package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/session"
	"repro/internal/unit"
)

const sessionBody = `{"bench":"Synthetic3","options":{"imax":60}}`

// sessionSuffixCell synthesizes the session's benchmark with the same
// options the server resolves and picks a dead-cell candidate the repair
// ladder can route around: an interior cell of a path whose transport
// has not executed at the cut. The synthesis is deterministic, so the
// cell is valid against the server's pinned solution.
func sessionSuffixCell(t *testing.T) (route.Cell, unit.Time) {
	t.Helper()
	bm, err := benchdata.ByName("Synthetic3")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Place.Imax = 60
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	at := sol.Schedule.Makespan / 2
	executed := schedule.Executed(sol.Schedule, at)
	consumer := make(map[int]assay.OpID)
	for _, tr := range sol.Schedule.Transports {
		consumer[tr.ID] = tr.Consumer
	}
	for _, rt := range sol.Routing.Routes {
		if !executed[consumer[rt.Task.ID]] && len(rt.Path) >= 3 {
			return rt.Path[len(rt.Path)/2], at
		}
	}
	t.Skip("no suffix transport with an interior cell at this cut")
	return route.Cell{}, 0
}

func getText(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	cell, at := sessionSuffixCell(t)

	// The default scrape must not know sessions exist.
	if scrape := getText(t, ts.URL, "/metrics"); strings.Contains(scrape, "mfserved_session") {
		t.Error("session families exposed before any session traffic")
	}

	var sr sessionResponse
	if code := postJSON(t, ts.URL, "/v1/sessions", sessionBody, &sr); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if sr.State != session.Active || sr.ID == "" || sr.Fingerprint == "" {
		t.Fatalf("create response: %+v", sr)
	}
	if sr.Cached {
		t.Error("first create claims a cache hit on an empty cache")
	}

	var snap session.Snapshot
	if code := getJSON(t, ts.URL, sr.Session, &snap); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if snap.Fingerprint != sr.Fingerprint {
		t.Errorf("snapshot fingerprint drifted: %s != %s", snap.Fingerprint, sr.Fingerprint)
	}

	var rr repairResponse
	fr := fmt.Sprintf(`{"at":%d,"cells":[{"x":%d,"y":%d}]}`, at, cell.X, cell.Y)
	if code := postJSON(t, ts.URL, sr.Faults, fr, &rr); code != http.StatusOK {
		t.Fatalf("fault: status %d", code)
	}
	if rr.Record.Outcome != session.OutcomeRepaired || rr.Record.Rung != session.RungReroute {
		t.Errorf("repair = %s/%s, want %s/%s",
			rr.Record.Rung, rr.Record.Outcome, session.RungReroute, session.OutcomeRepaired)
	}
	if rr.Snapshot.CellsLost != 1 || rr.Snapshot.Fingerprint == sr.Fingerprint {
		t.Errorf("post-repair snapshot: %+v", rr.Snapshot)
	}

	// Session traffic unlocks the gated metric families.
	scrape := getText(t, ts.URL, "/metrics")
	for _, want := range []string{
		"mfserved_sessions_opened_total 1",
		"mfserved_sessions_open 1",
		`mfserved_session_repairs_total{outcome="repaired"} 1`,
		"mfserved_session_cells_lost 1",
		"mfserved_session_repair_latency_seconds_count 1",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	// And stays structurally valid Prometheus exposition.
	parseProm(t, scrape)

	if code := postJSON(t, ts.URL, sr.Session+"/close", "", &snap); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
	if snap.State != session.Closed {
		t.Errorf("state after close = %s", snap.State)
	}
	if code := postJSON(t, ts.URL, sr.Faults, fr, nil); code != http.StatusConflict {
		t.Errorf("fault on closed session: status %d, want 409", code)
	}

	// A second session over the same assay pins the cached solution —
	// byte-identical, so the fingerprints agree.
	var sr2 sessionResponse
	if code := postJSON(t, ts.URL, "/v1/sessions", sessionBody, &sr2); code != http.StatusCreated {
		t.Fatalf("second create: status %d", code)
	}
	if !sr2.Cached {
		t.Error("second create missed the solution cache")
	}
	if sr2.Fingerprint != sr.Fingerprint {
		t.Errorf("cache-served session fingerprint differs: %s != %s", sr2.Fingerprint, sr.Fingerprint)
	}
}

func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	if code := postJSON(t, ts.URL, "/v1/sessions", `{"bench":"PCR","baseline":true}`, nil); code != http.StatusBadRequest {
		t.Errorf("baseline session: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, "/v1/sessions", `{"bench":"PCR","nope":1}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, "/v1/sessions/s-missing/faults", `{"at":0,"cells":[{"x":1,"y":1}]}`, nil); code != http.StatusNotFound {
		t.Errorf("fault on unknown session: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL, "/v1/sessions/s-missing", nil); code != http.StatusNotFound {
		t.Errorf("get unknown session: status %d, want 404", code)
	}

	var sr sessionResponse
	if code := postJSON(t, ts.URL, "/v1/sessions", sessionBody, &sr); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := postJSON(t, ts.URL, sr.Faults, `{"at":0}`, nil); code != http.StatusBadRequest {
		t.Errorf("empty fault report: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, sr.Faults, `{"at":0,"cells":[{"x":-3,"y":0}]}`, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-plane cell: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, sr.Faults, `{"at":0,"bogus":true}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown fault field: status %d, want 400", code)
	}
	// Rejected reports leave the session untouched.
	var snap session.Snapshot
	getJSON(t, ts.URL, sr.Session, &snap)
	if snap.State != session.Active || snap.CellsLost != 0 {
		t.Errorf("rejected reports changed state: %+v", snap)
	}
}

// TestSessionJournalReplay: a process that dies with a live session —
// create and fault reports journaled, nothing marked terminal — replays
// on the next start into byte-identical session state.
func TestSessionJournalReplay(t *testing.T) {
	jnlPath := filepath.Join(t.TempDir(), "journal.jsonl")
	cell, at := sessionSuffixCell(t)

	s1, err := New(Config{Workers: 1, QueueCap: 8, JournalPath: jnlPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())
	var sr sessionResponse
	if code := postJSON(t, ts.URL, "/v1/sessions", sessionBody, &sr); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var rr repairResponse
	fr := fmt.Sprintf(`{"at":%d,"cells":[{"x":%d,"y":%d}]}`, at, cell.X, cell.Y)
	if code := postJSON(t, ts.URL, sr.Faults, fr, &rr); code != http.StatusOK {
		t.Fatalf("fault: status %d", code)
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()

	// The restart replays the create and the fault report synchronously.
	s2, err := New(Config{Workers: 1, QueueCap: 8, JournalPath: jnlPath})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	if got := s2.replayed.Load(); got < 2 {
		t.Errorf("replayed = %d, want >= 2 (create + fault)", got)
	}
	st := s2.session(sr.ID)
	if st == nil {
		t.Fatalf("session %s not restored by replay", sr.ID)
	}
	snap := st.sess.Snapshot()
	if snap.Fingerprint != rr.Snapshot.Fingerprint {
		t.Errorf("replayed fingerprint %s != pre-crash %s", snap.Fingerprint, rr.Snapshot.Fingerprint)
	}
	if snap.State != session.Active || snap.Cut != rr.Snapshot.Cut || snap.CellsLost != rr.Snapshot.CellsLost {
		t.Errorf("replayed state %+v != pre-crash %+v", snap, rr.Snapshot)
	}
	if len(snap.Repairs) != 1 || snap.Repairs[0].Fingerprint != rr.Record.Fingerprint {
		t.Errorf("replayed repair log %+v != pre-crash record %+v", snap.Repairs, rr.Record)
	}
}

// TestSessionClusterRouting: session traffic reaches its session from
// any node — the holder serves it, every other node proxies to the ring
// owner.
func TestSessionClusterRouting(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	cell, at := sessionSuffixCell(t)

	var sr sessionResponse
	if code := postJSON(t, nodes[0].url, "/v1/sessions", sessionBody, &sr); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for i, nd := range nodes {
		var snap session.Snapshot
		if code := getJSON(t, nd.url, "/v1/sessions/"+sr.ID, &snap); code != http.StatusOK {
			t.Fatalf("node %d get: status %d", i, code)
		}
		if snap.ID != sr.ID || snap.State != session.Active {
			t.Errorf("node %d snapshot: %+v", i, snap)
		}
	}
	// Fault-report via the node that does NOT hold the session still
	// repairs it (exactly one node holds it; try both, expect one 200
	// each since repairs are monotonic in At).
	var rr repairResponse
	fr := fmt.Sprintf(`{"at":%d,"cells":[{"x":%d,"y":%d}]}`, at, cell.X, cell.Y)
	if code := postJSON(t, nodes[1].url, "/v1/sessions/"+sr.ID+"/faults", fr, &rr); code != http.StatusOK {
		t.Fatalf("fault via node 1: status %d", code)
	}
	if rr.Record.Outcome != session.OutcomeRepaired {
		t.Errorf("outcome = %s, want %s", rr.Record.Outcome, session.OutcomeRepaired)
	}
	var snap session.Snapshot
	if code := postJSON(t, nodes[0].url, "/v1/sessions/"+sr.ID+"/close", "", &snap); code != http.StatusOK {
		t.Fatalf("close via node 0: status %d", code)
	}
	if snap.State != session.Closed {
		t.Errorf("state after close = %s", snap.State)
	}
}
