package server

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobq"
	"repro/internal/obs"
)

// trace.go: the serving-layer half of request tracing — recorder
// construction per request, sealing a job's timeline into its result,
// the flight recorder and SLO accounting at every terminal transition,
// and the /v1/jobs/{id}/trace and /debug/requests endpoints.
//
// Everything here runs outside the synthesis pipeline. The pipeline's
// determinism contract (byte-identical solutions, traced or not) is
// enforced by obs_trace_test.go at the repo root.

// nodeEntropy returns a short random hex string that makes this
// process's span-ID prefixes unique across the cluster. Falling back to
// the clock keeps the server starting even without an entropy source.
func nodeEntropy() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// newRecorder starts a span recorder for one request. An empty traceID
// mints a fresh trace (a client-originated request); a non-empty one
// joins the inbound trace (a forwarded request).
func (s *Server) newRecorder(traceID, parentSpan string) *obs.SpanRecorder {
	prefix := s.entropy + "-" + strconv.FormatUint(s.traceSeq.Add(1), 10)
	if traceID == "" {
		traceID = "t-" + prefix
	}
	return obs.NewSpanRecorder(traceID, parentSpan, s.node, prefix)
}

// requestRecorder builds the recorder for an inbound HTTP request from
// its (sanitized) trace headers.
func (s *Server) requestRecorder(r *http.Request) *obs.SpanRecorder {
	return s.newRecorder(
		sanitizeID(r.Header.Get(cluster.HeaderTraceID)),
		sanitizeID(r.Header.Get(cluster.HeaderParentSpan)))
}

// seal closes the request's root span with the route taken and moves
// the finished timeline into the job result, where /v1/jobs/{id} and
// the trace endpoint serve it from.
func (s *Server) seal(rec *obs.SpanRecorder, res *jobResult, route string) {
	if rec == nil || res == nil {
		return
	}
	rec.CloseRoot(route)
	res.trace = rec.TraceID()
	res.route = route
	res.spans = rec.Spans()
	s.spansTotal.Add(int64(len(res.spans)))
	s.metrics.routed(route)
}

// recordServed accounts a request the handler answered in-line (cache
// or peer hit): its latency is the handler latency, and the terminal
// observer skips cached results so nothing double-counts.
func (s *Server) recordServed(id string, rec *obs.SpanRecorder, route string, start time.Time) {
	d := time.Since(start)
	s.slo.Observe(d)
	s.flight.Record(obs.RequestRecord{
		ID: id, TraceID: rec.TraceID(), Time: time.Now(),
		DurMs: msf(d), Outcome: string(jobq.Done), Route: route, Cached: true,
	})
}

// recordDropped accounts a request refused before any job ran: rejected
// (429 backpressure) or shed (503 breaker). Both burn SLO budget — the
// client got no answer within any target.
func (s *Server) recordDropped(id string, rec *obs.SpanRecorder, outcome string, start time.Time) {
	rec.CloseRoot(outcome)
	s.slo.Fail()
	s.flight.Record(obs.RequestRecord{
		ID: id, TraceID: rec.TraceID(), Time: time.Now(),
		DurMs: msf(time.Since(start)), Outcome: outcome,
	})
}

// recordTerminal is the OnTerminal half of the flight recorder and SLO
// accounting: every queued job (local synthesis, forward, fallback)
// lands here exactly once. Cache and peer hits were recorded by the
// handler (recordServed) when their Complete() fired this observer, so
// they are skipped.
func (s *Server) recordTerminal(j jobq.Job) {
	res, _ := j.Result.(*jobResult)
	if res != nil && res.cached {
		return
	}
	d := j.Finished.Sub(j.Created)
	if j.Status == jobq.Done {
		s.slo.Observe(d)
	} else {
		s.slo.Fail()
	}
	rr := obs.RequestRecord{
		ID: j.Label, Time: j.Finished, DurMs: msf(d),
		Outcome: string(j.Status), QueueMs: msf(j.Wait()), Error: j.Err,
	}
	if res != nil {
		rr.TraceID = res.trace
		rr.Route = res.route
		rr.ScheduleMs = msf(res.stages.Schedule)
		rr.PlaceMs = msf(res.stages.Place)
		rr.RouteMs = msf(res.stages.Route)
		for _, dg := range res.degradations {
			rr.Degradations = append(rr.Degradations, dg.Stage+"/"+dg.Event)
		}
	}
	s.flight.Record(rr)
}

// handleJobTrace serves a finished job's merged timeline. The default
// rendering is a Chrome/Perfetto trace document with one process track
// per node; ?raw=1 returns the span list as JSON instead.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.q.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	res, ok := j.Result.(*jobResult)
	if !ok {
		writeErr(w, http.StatusConflict, "job %q is %s: no trace available", id, j.Status)
		return
	}
	if len(res.spans) == 0 {
		writeErr(w, http.StatusNotFound, "job %q recorded no spans", id)
		return
	}
	if r.URL.Query().Get("raw") != "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"trace_id": res.trace, "route": res.route, "spans": res.spans,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.ChromeTrace(w, res.spans); err != nil {
		s.log.Warn("trace render failed", "job", id, "err", err)
	}
}

// handleDebugRequests serves the flight recorder: the most recent
// completed requests (?n= bounds the count) or, with ?slowest=N, the N
// slowest retained.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("slowest"); v != "" {
		n, _ := strconv.Atoi(v)
		if n <= 0 {
			n = 10
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"total": s.flight.Total(), "slowest": s.flight.Slowest(n),
		})
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	writeJSON(w, http.StatusOK, map[string]any{
		"total": s.flight.Total(), "records": s.flight.Snapshot(n),
	})
}

// DumpFlight writes the flight recorder's retained records (newest
// first) as indented JSON — the SIGQUIT postmortem dump.
func (s *Server) DumpFlight(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"total":   s.flight.Total(),
		"records": s.flight.Snapshot(0),
	})
}

// SLOStats exposes the configured objectives' counters (nil when the
// SLO layer is off) for the self-benchmarks.
func (s *Server) SLOStats() []obs.SLOStat { return s.slo.Stats() }

// msf converts a duration to fractional milliseconds.
func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
