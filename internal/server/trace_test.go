package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSanitizeID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"req-42", "req-42"},
		{"a b\tc", "abc"},
		{"evil\r\nSet-Cookie: x=1", "evilSet-Cookie:x=1"},
		{"naïve-ü", "nave-"},
		{strings.Repeat("x", 200), strings.Repeat("x", 128)},
	}
	for _, c := range cases {
		if got := sanitizeID(c.in); got != c.want {
			t.Errorf("sanitizeID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Clean inputs must come back unmodified (the alloc-free fast path).
	clean := "t-0a1b2c3d-17"
	if got := sanitizeID(clean); got != clean {
		t.Errorf("clean id mangled: %q", got)
	}
}

// getBody GETs path and returns status and body.
func getBody(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestClusterMergedTrace is the end-to-end trace contract: a request
// submitted to a non-owner on a 3-node cluster is forwarded, and the
// submission node then serves ONE merged trace that attributes spans to
// both processes under a single trace ID with an intact parent chain.
func TestClusterMergedTrace(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	body := bodyOwnedBy(t, nodes[0].cl, nodes[1].url)

	var sub submitResponse
	if code := postJSON(t, nodes[0].url, "/v1/synthesize", body, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	jr := waitTerminal(t, nodes[0].url, sub.JobID, 60*time.Second)
	if jr.Status != "done" {
		t.Fatalf("job: %s (%s)", jr.Status, jr.Error)
	}
	if jr.TraceID == "" {
		t.Fatal("terminal job response carries no trace_id")
	}
	if jr.Trace == "" {
		t.Fatal("terminal job response carries no trace link")
	}

	code, data := getBody(t, nodes[0].url, "/v1/jobs/"+sub.JobID+"/trace?raw=1")
	if code != http.StatusOK {
		t.Fatalf("GET trace?raw=1: %d: %s", code, data)
	}
	var raw struct {
		TraceID string     `json:"trace_id"`
		Route   string     `json:"route"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.Route != routeForwarded {
		t.Fatalf("route = %q, want %q", raw.Route, routeForwarded)
	}
	if raw.TraceID != jr.TraceID {
		t.Fatalf("trace endpoint id %q != job trace_id %q", raw.TraceID, jr.TraceID)
	}

	// One trace: shared ID, exactly one root, all parents resolvable,
	// spans from at least two distinct nodes.
	ids := map[string]bool{}
	nodesSeen := map[string]bool{}
	roots := 0
	for _, sp := range raw.Spans {
		if sp.TraceID != raw.TraceID {
			t.Fatalf("span %s carries trace %q", sp.ID, sp.TraceID)
		}
		ids[sp.ID] = true
		nodesSeen[sp.Node] = true
		if sp.Parent == "" {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("merged trace has %d roots, want 1", roots)
	}
	if len(nodesSeen) < 2 {
		t.Fatalf("spans attribute to %d node(s), want >= 2 (forward not merged)", len(nodesSeen))
	}
	for _, sp := range raw.Spans {
		if sp.Parent != "" && !ids[sp.Parent] {
			t.Fatalf("span %s references missing parent %s", sp.ID, sp.Parent)
		}
	}
	// The owner-side work must be visible from the submitting node.
	names := map[string]int{}
	for _, sp := range raw.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"request", "forward", "synthesize", "stage.schedule", "stage.place", "stage.route"} {
		if names[want] == 0 {
			t.Errorf("merged trace is missing a %q span (have %v)", want, names)
		}
	}
	if names["request"] < 2 {
		t.Errorf("want a request span per process, got %d", names["request"])
	}

	// The Chrome rendering of the same trace: valid JSON, one labeled
	// process track per node.
	code, doc := getBody(t, nodes[0].url, "/v1/jobs/"+sub.JobID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d", code)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	xEvents := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Args.Name] = true
		}
		if ev.Ph == "X" {
			xEvents++
		}
	}
	if len(procs) < 2 {
		t.Fatalf("chrome trace names %d process track(s), want >= 2: %v", len(procs), procs)
	}
	if xEvents != len(raw.Spans) {
		t.Fatalf("chrome trace has %d X events, raw trace has %d spans", xEvents, len(raw.Spans))
	}

	// Trace for an unknown job 404s; trace for a local single-span-set
	// job still works (no cluster hop required).
	if code, _ := getBody(t, nodes[0].url, "/v1/jobs/nope/trace"); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: %d, want 404", code)
	}
}

// TestDebugRequestsFlight drives jobs through a cluster node and checks
// the flight recorder endpoint: totals move, records are newest-first,
// the slowest view is sorted, and route/stage attribution is present.
func TestDebugRequestsFlight(t *testing.T) {
	nodes := startCluster(t, 1, func(i int, cfg *Config) { cfg.FlightRecords = 8 })
	base := nodes[0].url

	var first submitResponse
	body := `{"bench":"PCR","options":{"imax":60,"seed":3}}`
	if code := postJSON(t, base, "/v1/synthesize", body, &first); code != http.StatusAccepted {
		t.Fatalf("POST: %d", code)
	}
	if jr := waitTerminal(t, base, first.JobID, 60*time.Second); jr.Status != "done" {
		t.Fatalf("job: %s (%s)", jr.Status, jr.Error)
	}
	// Same body again: a cache hit, recorded with its own route.
	var second submitResponse
	if code := postJSON(t, base, "/v1/synthesize", body, &second); code != http.StatusOK {
		t.Fatalf("cache-hit POST: %d", code)
	}

	var dump struct {
		Total   int                 `json:"total"`
		Records []obs.RequestRecord `json:"records"`
	}
	code, data := getBody(t, base, "/debug/requests")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/requests: %d: %s", code, data)
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total < 2 || len(dump.Records) < 2 {
		t.Fatalf("flight shows total=%d records=%d, want >= 2", dump.Total, len(dump.Records))
	}
	// Newest first: the cache hit is record 0.
	if !dump.Records[0].Cached || dump.Records[0].Route != routeCacheHit {
		t.Fatalf("newest record = %+v, want the cache hit first", dump.Records[0])
	}
	var local *obs.RequestRecord
	for i := range dump.Records {
		if dump.Records[i].Route == routeLocal {
			local = &dump.Records[i]
			break
		}
	}
	if local == nil {
		t.Fatalf("no local-route record in %+v", dump.Records)
	}
	if local.Outcome != "done" || local.ScheduleMs <= 0 || local.PlaceMs <= 0 || local.RouteMs <= 0 {
		t.Fatalf("local record lacks stage attribution: %+v", *local)
	}
	if local.TraceID == "" || local.ID == "" {
		t.Fatalf("local record lacks identity: %+v", *local)
	}

	var slow struct {
		Total   int                 `json:"total"`
		Slowest []obs.RequestRecord `json:"slowest"`
	}
	code, data = getBody(t, base, "/debug/requests?slowest=5")
	if code != http.StatusOK {
		t.Fatalf("GET slowest: %d", code)
	}
	if err := json.Unmarshal(data, &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Slowest) < 2 {
		t.Fatalf("slowest view has %d records", len(slow.Slowest))
	}
	for i := 1; i < len(slow.Slowest); i++ {
		if slow.Slowest[i].DurMs > slow.Slowest[i-1].DurMs {
			t.Fatalf("slowest view not sorted: %v then %v", slow.Slowest[i-1].DurMs, slow.Slowest[i].DurMs)
		}
	}
}

// TestPromTraceSLOFamilies scrapes a clustered node with an SLO set
// armed and validates the new families appear, are format-valid (via
// parseProm), and carry sane values.
func TestPromTraceSLOFamilies(t *testing.T) {
	slo, err := obs.ParseSLO("p50=1h,p99=1ns")
	if err != nil {
		t.Fatal(err)
	}
	nodes := startCluster(t, 1, func(i int, cfg *Config) { cfg.SLO = slo })
	base := nodes[0].url

	var sub submitResponse
	if code := postJSON(t, base, "/v1/synthesize", `{"bench":"PCR","options":{"imax":60,"seed":4}}`, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: %d", code)
	}
	if jr := waitTerminal(t, base, sub.JobID, 60*time.Second); jr.Status != "done" {
		t.Fatalf("job: %s (%s)", jr.Status, jr.Error)
	}

	code, body := getBody(t, base, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	ms := parseProm(t, string(body))

	one := func(name, labels string) float64 {
		t.Helper()
		for _, m := range findProm(ms, name) {
			if m.labels == labels {
				return m.value
			}
		}
		t.Fatalf("metric %s{%s} missing", name, labels)
		return 0
	}

	if v := one("mfserved_trace_spans_total", ""); v < 1 {
		t.Fatalf("trace_spans_total = %v, want >= 1", v)
	}
	if v := one("mfserved_flight_records_total", ""); v < 1 {
		t.Fatalf("flight_records_total = %v, want >= 1", v)
	}
	if v := one("mfserved_requests_routed_total", `route="local"`); v < 1 {
		t.Fatalf("routed{local} = %v, want >= 1", v)
	}
	// All five route labels must be present (zero-valued is fine) so
	// dashboards never see a series appear mid-flight.
	for _, route := range []string{routeCacheHit, routePeerHit, routeLocal, routeForwarded, routeFallback} {
		one("mfserved_requests_routed_total", `route="`+route+`"`)
	}

	// A 1h p50 objective is trivially met; a 1ns p99 objective is
	// trivially violated — so both good and bad counters must move.
	if v := one("mfserved_slo_requests_total", `objective="p50",result="good"`); v < 1 {
		t.Fatalf("p50 good = %v, want >= 1", v)
	}
	if v := one("mfserved_slo_requests_total", `objective="p99",result="bad"`); v < 1 {
		t.Fatalf("p99 bad = %v, want >= 1", v)
	}
	if v := one("mfserved_slo_attainment_ratio", `objective="p50"`); v != 1 {
		t.Fatalf("p50 attainment = %v, want 1", v)
	}
	if v := one("mfserved_slo_attainment_ratio", `objective="p99"`); v != 0 {
		t.Fatalf("p99 attainment = %v, want 0", v)
	}
	if v := one("mfserved_slo_target_seconds", `objective="p50"`); v != 3600 {
		t.Fatalf("p50 target = %v, want 3600", v)
	}
	// Burn rate for an always-violated p99: (bad/total)/(1-0.99) = 100.
	if v := one("mfserved_slo_burn_rate", `objective="p99"`); v < 99 || v > 101 {
		t.Fatalf("p99 burn rate = %v, want ~100", v)
	}
}

// TestPromSingleNodeFamiliesStable pins the family list of a default
// single-node scrape: none of the cluster-, trace-, flight-, route- or
// SLO-gated families may leak into the default exposition, so existing
// scrape configs see byte-stable family sets when the new layers are
// disabled.
func TestPromSingleNodeFamiliesStable(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	var sub submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: %d", code)
	}
	if jr := waitTerminal(t, ts.URL, sub.JobID, 60*time.Second); jr.Status != "done" {
		t.Fatalf("job: %s (%s)", jr.Status, jr.Error)
	}

	code, body := getBody(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	fams := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams[strings.Fields(line)[2]] = true
		}
	}
	for _, gated := range []string{
		"mfserved_trace_spans_total", "mfserved_flight_records_total",
		"mfserved_requests_routed_total", "mfserved_slo_requests_total",
		"mfserved_slo_target_seconds", "mfserved_slo_attainment_ratio",
		"mfserved_slo_burn_rate", "mfserved_cluster_members",
		"mfserved_workload_requests_total",
	} {
		if fams[gated] {
			t.Errorf("family %s leaked into the default single-node exposition", gated)
		}
	}

	// Golden family list: additions to the DEFAULT scrape are a
	// compatibility event and must be deliberate — update this list in
	// the same change that adds the family.
	want := []string{
		"mfserved_astar_expanded_total",
		"mfserved_astar_heap_peak",
		"mfserved_batch_members_deduped_total",
		"mfserved_batch_members_total",
		"mfserved_batch_requests_total",
		"mfserved_breaker_open",
		"mfserved_cache_bytes",
		"mfserved_cache_entries",
		"mfserved_cache_hits_total",
		"mfserved_cache_misses_total",
		"mfserved_jobs_accepted_total",
		"mfserved_jobs_finished_total",
		"mfserved_jobs_rejected_total",
		"mfserved_jobs_shed_total",
		"mfserved_journal_replayed_total",
		"mfserved_place_retries_total",
		"mfserved_queue_capacity",
		"mfserved_queue_depth",
		"mfserved_request_latency_seconds",
		"mfserved_route_dilations_total",
		"mfserved_route_slot_conflicts_total",
		"mfserved_route_spec_accepted_total",
		"mfserved_route_spec_rerouted_total",
		"mfserved_route_tasks_total",
		"mfserved_route_wave_width_peak",
		"mfserved_route_waves_total",
		"mfserved_sa_accepted_total",
		"mfserved_sa_moves_total",
		"mfserved_sa_steps_total",
		"mfserved_schedule_bindings_total",
		"mfserved_schedule_wash_avoided_seconds_total",
		"mfserved_stage_latency_seconds",
		"mfserved_synthesis_latency_seconds",
		"mfserved_temper_replicas",
		"mfserved_temper_rounds_total",
		"mfserved_temper_swaps_total",
		"mfserved_uptime_seconds",
		"mfserved_workers",
		"mfserved_workers_busy",
	}
	got := make([]string, 0, len(fams))
	for f := range fams {
		got = append(got, f)
	}
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("default single-node family list changed:\n got: %v\nwant: %v", got, want)
	}
}
