// Package session keeps a synthesized assay alive across its physical
// execution and repairs it in place when the chip degrades. A session
// pins one solution; fault reports (Su & Chakrabarty's defect model:
// dead valves/channel cells and failed components) arrive stamped with
// the execution instant they were observed at, and the session re-plans
// only the not-yet-executed suffix of the solution — the executed prefix
// is physical history and is never touched.
//
// Repairs escalate through a fixed ladder, cheapest first:
//
//	L1 reroute     cell faults only: schedule and placement frozen, the
//	               surviving transports re-routed around the dead cells
//	               (previous paths reused where still feasible, bounded
//	               rip-up recovery otherwise).
//	L2 reschedule  the suffix is rescheduled off failed components
//	               (schedule.RescheduleSuffix) and re-routed; placement
//	               still frozen.
//	L3 dilate      pre-flight only: the placement is dilated (×1.5 per
//	               try, 3 tries) and everything re-routed.
//	L4 sa          pre-flight only: the placement is re-annealed at
//	               quartered effort with a repair-derived seed.
//
// L3/L4 move component footprints, which is physically impossible once
// any operation has executed — fabricated geometry does not move
// mid-assay — so those rungs are legal only while the executed prefix is
// empty (faults found during priming, before the run starts).
//
// Every successful repair is re-audited from scratch by
// verify.AuditRepair against the pre-repair solution: executed rows
// byte-identical, nothing new before the cut, no surviving work on a
// failed component, frozen routes untouched, no re-planned path through
// a dead cell. A repair that fails its audit escalates to the next rung
// instead of being returned.
//
// Repairs are pure functions of (session solution, accumulated faults,
// report): scheduling is deterministic, route.Repair is always
// sequential, and the L4 re-anneal seed is derived from the session's
// placement seed and the repair index — so the same session seed and the
// same fault-report sequence produce byte-identical solutions at any
// serving pool size, and every repair carries a fingerprint to prove it.
package session

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/solio"
	"repro/internal/unit"
	"repro/internal/verify"
	"repro/internal/whatif"
)

// State is the session lifecycle state.
type State string

const (
	// Active sessions accept fault reports.
	Active State = "active"
	// Abandoned sessions hit an unrepairable fault; the assay is lost.
	Abandoned State = "abandoned"
	// Closed sessions completed (or were closed by the client).
	Closed State = "closed"
)

// Rung names one level of the repair escalation ladder.
const (
	RungReroute    = "reroute"
	RungReschedule = "reschedule"
	RungDilate     = "dilate"
	RungSA         = "sa"
)

// Outcome classifies a repair.
const (
	// OutcomeRepaired: the cheapest rung held — same schedule, same
	// placement, only channels re-planned.
	OutcomeRepaired = "repaired"
	// OutcomeDegraded: a deeper rung was needed; the solution is valid
	// and audited but its quality is not comparable to the original.
	OutcomeDegraded = "degraded"
	// OutcomeAbandoned: no rung produced an auditable solution.
	OutcomeAbandoned = "abandoned"
)

// ErrNotActive rejects fault reports on abandoned or closed sessions.
var ErrNotActive = errors.New("session: not active")

// ErrAbandoned wraps the cause when a repair exhausts the ladder.
var ErrAbandoned = errors.New("session: assay abandoned")

// FaultReport is one observation of chip degradation at execution time
// At: cells that died on the routing plane and components that failed.
type FaultReport struct {
	// At is the execution instant the faults were observed, measured on
	// the solution's schedule clock. Reports must be monotonic: At may
	// not precede an earlier report's At.
	At unit.Time `json:"at"`
	// Cells are dead routing-plane cells (absolute plane coordinates).
	Cells []route.Cell `json:"cells,omitempty"`
	// Comps are failed components.
	Comps []chip.CompID `json:"comps,omitempty"`
}

// RepairRecord is the journal of one repair attempt.
type RepairRecord struct {
	Index   int       `json:"index"`
	At      unit.Time `json:"at"`
	Rung    string    `json:"rung"`
	Outcome string    `json:"outcome"`
	// CellsLost / CompsLost are cumulative over the session's life.
	CellsLost int `json:"cells_lost"`
	CompsLost int `json:"comps_lost"`
	// Makespan is the repaired completion time (zero when abandoned).
	Makespan unit.Time `json:"makespan,omitempty"`
	// Fingerprint is the SHA-256 of the repaired solution's canonical
	// encoding — byte-identical repairs have byte-identical prints.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Escalations lists the rungs that were tried and failed before the
	// recorded rung held.
	Escalations []string      `json:"escalations,omitempty"`
	Err         string        `json:"error,omitempty"`
	Dur         time.Duration `json:"dur_ns"`
}

// Session pins one synthesized solution and repairs it against incoming
// fault reports. All methods are safe for concurrent use.
type Session struct {
	mu sync.Mutex

	id   string
	sol  *core.Solution
	opts core.Options

	state   State
	cut     unit.Time // high-water execution instant
	banned  []bool    // by CompID; failed components
	defects []route.Cell
	repairs []RepairRecord

	analysis whatif.Analysis
	print    string
}

// New opens a session around an already-synthesized solution. The
// solution is treated as immutable: repairs replace it, never mutate it.
// A single-failure what-if study runs at open so the client learns the
// assay's single points of failure up front.
func New(id string, sol *core.Solution, alloc chip.Allocation) (*Session, error) {
	if sol == nil || sol.Schedule == nil || sol.Placement == nil || sol.Routing == nil {
		return nil, fmt.Errorf("session: incomplete solution")
	}
	if sol.Baseline {
		return nil, fmt.Errorf("session: baseline solutions cannot be repaired (no storage-aware suffix re-entry)")
	}
	s := &Session{
		id:     id,
		sol:    sol,
		opts:   sol.Opts,
		state:  Active,
		banned: make([]bool, len(sol.Comps)),
	}
	fp, err := fingerprint(sol)
	if err != nil {
		return nil, err
	}
	s.print = fp
	if an, err := whatif.SingleFailures(sol.Assay, alloc, sol.Opts.Schedule); err == nil {
		s.analysis = an
	}
	return s, nil
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Snapshot is the externally visible session state.
type Snapshot struct {
	ID          string         `json:"id"`
	State       State          `json:"state"`
	Cut         unit.Time      `json:"cut"`
	Makespan    unit.Time      `json:"makespan"`
	GridW       int            `json:"grid_w"`
	GridH       int            `json:"grid_h"`
	CellsLost   int            `json:"cells_lost"`
	CompsLost   int            `json:"comps_lost"`
	Fingerprint string         `json:"fingerprint"`
	Repairs     []RepairRecord `json:"repairs,omitempty"`
	// SinglePoints are the component types whose loss makes the assay
	// infeasible (from the open-time what-if study).
	SinglePoints []string `json:"single_points,omitempty"`
}

// Snapshot returns a copy of the session's visible state.
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		ID:          s.id,
		State:       s.state,
		Cut:         s.cut,
		Makespan:    s.sol.Schedule.Makespan,
		GridW:       s.sol.Routing.GridW,
		GridH:       s.sol.Routing.GridH,
		CellsLost:   len(s.defects),
		Fingerprint: s.print,
		Repairs:     append([]RepairRecord(nil), s.repairs...),
	}
	for _, b := range s.banned {
		if b {
			snap.CompsLost++
		}
	}
	for _, tp := range s.analysis.SinglePoints {
		snap.SinglePoints = append(snap.SinglePoints, tp.String())
	}
	return snap
}

// Solution returns the current (possibly repaired) solution. The caller
// must treat it as read-only.
func (s *Session) Solution() *core.Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sol
}

// Close marks the session finished. Closing is idempotent; an abandoned
// session stays abandoned.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Active {
		s.state = Closed
	}
}

// Repair applies one fault report: validates it, escalates through the
// ladder until a rung produces a solution that passes the repair audit,
// and installs the repaired solution. The returned record is also
// appended to the session's repair log. An exhausted ladder (or a
// structurally unrepairable fault) abandons the session and returns an
// error wrapping ErrAbandoned.
func (s *Session) Repair(ctx context.Context, fr FaultReport) (RepairRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := time.Now()

	if s.state != Active {
		return RepairRecord{}, fmt.Errorf("%w (state %s)", ErrNotActive, s.state)
	}
	if err := s.validate(fr); err != nil {
		return RepairRecord{}, err
	}
	if err := fault.From(ctx).Err(fault.SessionRepairFail); err != nil {
		return RepairRecord{}, fmt.Errorf("session: repair aborted: %w", err)
	}
	tr := obs.From(ctx)
	tr.Begin(obs.CatPipeline, "session.repair")
	defer tr.End(obs.CatPipeline, "session.repair")

	// Accumulate the report into working copies; committed only on
	// success or abandonment — a cancelled repair leaves the session
	// untouched and retryable.
	banned := append([]bool(nil), s.banned...)
	for _, c := range fr.Comps {
		banned[c] = true
	}
	defects := append([]route.Cell(nil), s.defects...)
	for _, c := range fr.Cells {
		if !cellKnown(defects, c) {
			defects = append(defects, c)
		}
	}
	compFault := len(fr.Comps) > 0
	executed := schedule.Executed(s.sol.Schedule, fr.At)
	preFlight := true
	for _, ex := range executed {
		if ex {
			preFlight = false
			break
		}
	}

	rec := RepairRecord{Index: len(s.repairs), At: fr.At}
	for _, b := range banned {
		if b {
			rec.CompsLost++
		}
	}
	rec.CellsLost = len(defects)

	var ladder []string
	if !compFault {
		ladder = append(ladder, RungReroute)
	}
	ladder = append(ladder, RungReschedule)
	if preFlight {
		ladder = append(ladder, RungDilate, RungSA)
	}

	var lastErr error
	for _, rung := range ladder {
		sol, err := s.attempt(ctx, rung, fr.At, banned, defects)
		if err != nil {
			if ctx.Err() != nil {
				return RepairRecord{}, fmt.Errorf("session: repair cancelled: %w", err)
			}
			lastErr = err
			if fatal(err) {
				break // deeper rungs cannot create components or fluids
			}
			rec.Escalations = append(rec.Escalations, rung)
			tr.Instant(obs.CatPipeline, "session.escalate")
			continue
		}
		if rep := s.audit(sol, fr.At, banned, defects, rung); !rep.OK() {
			lastErr = fmt.Errorf("session: %s repair failed its audit: %w", rung, rep.Err())
			rec.Escalations = append(rec.Escalations, rung)
			tr.Instant(obs.CatPipeline, "session.escalate")
			continue
		}
		fp, err := fingerprint(sol)
		if err != nil {
			return RepairRecord{}, err
		}
		rec.Rung = rung
		rec.Outcome = OutcomeRepaired
		if rung != RungReroute {
			rec.Outcome = OutcomeDegraded
			sol.Degradations = append(sol.Degradations, core.Degradation{
				Stage: "session", Event: rung,
				Detail: fmt.Sprintf("repair %d at %v: %d dead cells, %d failed components",
					rec.Index, fr.At, rec.CellsLost, rec.CompsLost),
			})
		}
		rec.Makespan = sol.Schedule.Makespan
		rec.Fingerprint = fp
		rec.Dur = time.Since(t0)
		s.sol = sol
		s.print = fp
		s.cut = fr.At
		s.banned = banned
		s.defects = defects
		s.repairs = append(s.repairs, rec)
		return rec, nil
	}

	if lastErr == nil {
		lastErr = errors.New("session: empty repair ladder")
	}
	rec.Outcome = OutcomeAbandoned
	rec.Err = lastErr.Error()
	rec.Dur = time.Since(t0)
	s.state = Abandoned
	s.cut = fr.At
	s.banned = banned
	s.defects = defects
	s.repairs = append(s.repairs, rec)
	return rec, fmt.Errorf("%w: %v", ErrAbandoned, lastErr)
}

// validate rejects malformed fault reports before any state changes.
func (s *Session) validate(fr FaultReport) error {
	if fr.At < s.cut {
		return fmt.Errorf("session: fault report at %v precedes the execution high-water %v", fr.At, s.cut)
	}
	if len(fr.Cells) == 0 && len(fr.Comps) == 0 {
		return fmt.Errorf("session: empty fault report")
	}
	for _, c := range fr.Cells {
		if c.X < 0 || c.Y < 0 || c.X >= s.sol.Routing.GridW || c.Y >= s.sol.Routing.GridH {
			return fmt.Errorf("session: dead cell (%d,%d) outside the %dx%d plane",
				c.X, c.Y, s.sol.Routing.GridW, s.sol.Routing.GridH)
		}
	}
	for _, c := range fr.Comps {
		if int(c) < 0 || int(c) >= len(s.sol.Comps) {
			return fmt.Errorf("session: unknown component %d", c)
		}
	}
	return nil
}

// fatal reports whether a rung failure is structural — no deeper rung
// can conjure a lost fluid, a mid-run component or a missing type.
func fatal(err error) bool {
	return errors.Is(err, schedule.ErrMidExecution) ||
		errors.Is(err, schedule.ErrFluidLost) ||
		errors.Is(err, schedule.ErrNoComponent)
}

// attempt runs one rung of the ladder and returns the candidate repaired
// solution. It never mutates the session.
func (s *Session) attempt(ctx context.Context, rung string, at unit.Time, banned []bool, defects []route.Cell) (*core.Solution, error) {
	rp := s.opts.Route
	if rp.RipUpRounds < 3 {
		rp.RipUpRounds = 3
	}
	switch rung {
	case RungReroute:
		spec := s.routeSpec(s.sol.Schedule, at, defects)
		rt, err := route.Repair(ctx, s.sol.Schedule, s.sol.Comps, s.sol.Placement, rp, spec)
		if err != nil {
			return nil, err
		}
		return s.replace(s.sol.Schedule, s.sol.Placement, rt), nil

	case RungReschedule:
		re, err := schedule.RescheduleSuffixContext(ctx, s.sol.Schedule, at, banned)
		if err != nil {
			return nil, err
		}
		spec := s.routeSpec(re, at, defects)
		rt, err := route.Repair(ctx, re, s.sol.Comps, s.sol.Placement, rp, spec)
		if err != nil {
			return nil, err
		}
		return s.replace(re, s.sol.Placement, rt), nil

	case RungDilate:
		re, err := schedule.RescheduleSuffixContext(ctx, s.sol.Schedule, at, banned)
		if err != nil {
			return nil, err
		}
		var lastErr error
		for k := 1; k <= 3; k++ {
			pl := place.Dilate(s.sol.Placement, math.Pow(1.5, float64(k)))
			spec := route.RepairSpec{Defects: defects}
			rt, err := route.Repair(ctx, re, s.sol.Comps, pl, rp, spec)
			if err != nil {
				lastErr = err
				if ctx.Err() != nil {
					return nil, err
				}
				continue
			}
			return s.replace(re, pl, rt), nil
		}
		return nil, lastErr

	case RungSA:
		re, err := schedule.RescheduleSuffixContext(ctx, s.sol.Schedule, at, banned)
		if err != nil {
			return nil, err
		}
		pp := s.opts.Place
		if pp.Imax > 4 {
			pp.Imax /= 4
		}
		// A deterministic repair-specific seed: distinct per repair
		// index, reproducible per (session seed, report sequence).
		pp.Seed = s.opts.Place.Seed + 7919*uint64(len(s.repairs)+1)
		nets := place.BuildNets(re, pp.Beta, pp.Gamma)
		pl, err := place.AnnealContext(ctx, s.sol.Comps, nets, pp)
		if err != nil {
			return nil, err
		}
		spec := route.RepairSpec{Defects: defects}
		rt, err := route.Repair(ctx, re, s.sol.Comps, pl, rp, spec)
		if err != nil {
			return nil, err
		}
		return s.replace(re, pl, rt), nil
	}
	return nil, fmt.Errorf("session: unknown rung %q", rung)
}

// routeSpec builds the routing repair spec for a (possibly rescheduled)
// schedule: frozen transports are those whose consumer has executed,
// matched to their previous paths by dependency edge (IDs are renumbered
// across rescheduling); every other transport gets its previous path as
// a reuse hint.
func (s *Session) routeSpec(sched *schedule.Result, at unit.Time, defects []route.Cell) route.RepairSpec {
	type edge struct{ p, c int }
	prevByEdge := make(map[edge][]route.Cell)
	trOf := make(map[int]schedule.Transport, len(s.sol.Schedule.Transports))
	for _, tr := range s.sol.Schedule.Transports {
		trOf[tr.ID] = tr
	}
	for _, rt := range s.sol.Routing.Routes {
		tr := trOf[rt.Task.ID]
		prevByEdge[edge{int(tr.Producer), int(tr.Consumer)}] = rt.Path
	}
	spec := route.RepairSpec{
		Defects:   defects,
		Frozen:    map[int]bool{},
		PrevPaths: map[int][]route.Cell{},
	}
	executed := schedule.Executed(sched, at)
	for _, tr := range sched.Transports {
		if p, ok := prevByEdge[edge{int(tr.Producer), int(tr.Consumer)}]; ok {
			spec.PrevPaths[tr.ID] = p
		}
		if executed[tr.Consumer] {
			spec.Frozen[tr.ID] = true
		}
	}
	return spec
}

// replace assembles the repaired solution without touching the previous
// one (which other goroutines may still be reading).
func (s *Session) replace(sched *schedule.Result, pl *place.Placement, rt *route.Result) *core.Solution {
	sol := *s.sol
	sol.Schedule = sched
	sol.Placement = pl
	sol.Routing = rt
	sol.Nets = place.BuildNets(sched, s.opts.Place.Beta, s.opts.Place.Gamma)
	sol.Degradations = append([]core.Degradation(nil), s.sol.Degradations...)
	return &sol
}

// audit re-checks the candidate against the full solution auditor plus
// the repair contract, with the pre-repair solution as the reference.
func (s *Session) audit(sol *core.Solution, at unit.Time, banned []bool, defects []route.Cell, rung string) *verify.Report {
	in := verify.Input{
		Assay:     sol.Assay,
		Comps:     sol.Comps,
		Schedule:  sol.Schedule,
		Placement: sol.Placement,
		Routing:   sol.Routing,
	}
	spec := verify.RepairSpec{
		At:              at,
		Banned:          banned,
		Defects:         defects,
		PrevSchedule:    s.sol.Schedule,
		PrevRouting:     s.sol.Routing,
		PlacementFrozen: rung == RungReroute || rung == RungReschedule,
		PrevPlacement:   s.sol.Placement,
	}
	return verify.AuditRepair(in, spec)
}

// fingerprint is the SHA-256 of the solution's canonical encoding with
// the wall-clock measurements zeroed — fingerprints cover solution
// content, and CPU time is the one field that legitimately varies
// between byte-identical runs.
func fingerprint(sol *core.Solution) (string, error) {
	c := *sol
	c.CPU = 0
	c.Stages = core.StageTimes{}
	h := sha256.New()
	if err := solio.Encode(h, &c); err != nil {
		return "", fmt.Errorf("session: fingerprint: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func cellKnown(cells []route.Cell, c route.Cell) bool {
	for _, k := range cells {
		if k == c {
			return true
		}
	}
	return false
}
