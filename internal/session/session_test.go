package session

import (
	"context"
	"errors"
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// synth builds a proposed-flow solution for a named benchmark with the
// given routing worker count (which must not affect any byte of the
// result — that is half of what these tests pin down).
func synth(t *testing.T, name string, workers int) (*core.Solution, chip.Allocation) {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Place.Imax = 60
	opts.Route.Workers = workers
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sol, bm.Alloc
}

func open(t *testing.T, name string, workers int) *Session {
	t.Helper()
	sol, alloc := synth(t, name, workers)
	s, err := New("s-test", sol, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// suffixCell finds a dead-cell candidate: an interior cell of a route
// whose transport's consumer has not executed at the cut.
func suffixCell(t *testing.T, s *Session, at unit.Time) route.Cell {
	t.Helper()
	sol := s.Solution()
	executed := schedule.Executed(sol.Schedule, at)
	consumer := make(map[int]assay.OpID)
	for _, tr := range sol.Schedule.Transports {
		consumer[tr.ID] = tr.Consumer
	}
	for _, rt := range sol.Routing.Routes {
		if !executed[consumer[rt.Task.ID]] && len(rt.Path) >= 3 {
			return rt.Path[len(rt.Path)/2]
		}
	}
	t.Skip("no suffix transport with an interior cell at this cut")
	return route.Cell{}
}

func TestSessionCellFaultReroutes(t *testing.T) {
	s := open(t, "Synthetic3", 0)
	before := s.Snapshot()
	at := s.Solution().Schedule.Makespan / 2
	cell := suffixCell(t, s, at)

	rec, err := s.Repair(context.Background(), FaultReport{At: at, Cells: []route.Cell{cell}})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rec.Rung != RungReroute || rec.Outcome != OutcomeRepaired {
		t.Errorf("rung/outcome = %s/%s, want %s/%s", rec.Rung, rec.Outcome, RungReroute, OutcomeRepaired)
	}
	if rec.CellsLost != 1 {
		t.Errorf("CellsLost = %d, want 1", rec.CellsLost)
	}
	if err := s.Solution().Validate(); err != nil {
		t.Fatalf("repaired solution invalid: %v", err)
	}
	for _, rt := range s.Solution().Routing.Routes {
		executed := schedule.Executed(s.Solution().Schedule, at)
		consumer := make(map[int]assay.OpID)
		for _, tr := range s.Solution().Schedule.Transports {
			consumer[tr.ID] = tr.Consumer
		}
		if !executed[consumer[rt.Task.ID]] {
			for _, c := range rt.Path {
				if c == cell {
					t.Errorf("re-planned task %d still crosses the dead cell", rt.Task.ID)
				}
			}
		}
	}
	after := s.Snapshot()
	if after.Fingerprint == before.Fingerprint {
		t.Error("repair did not change the solution fingerprint")
	}
	if after.State != Active || after.Cut != at || after.CellsLost != 1 {
		t.Errorf("snapshot after repair: %+v", after)
	}
}

func TestSessionCompFaultReschedules(t *testing.T) {
	s := open(t, "Synthetic3", 0)
	sol := s.Solution()
	at := sol.Schedule.Makespan / 2

	// Pick a component with suffix work that is idle across the cut.
	victim := chip.NoComp
	for _, bo := range sol.Schedule.Ops {
		if bo.Start >= at {
			busy := false
			for _, other := range sol.Schedule.Ops {
				if other.Comp == bo.Comp && other.Start < at && other.End > at {
					busy = true
					break
				}
			}
			if !busy {
				victim = bo.Comp
				break
			}
		}
	}
	if victim == chip.NoComp {
		t.Skip("no idle component with suffix work at this cut")
	}

	rec, err := s.Repair(context.Background(), FaultReport{At: at, Comps: []chip.CompID{victim}})
	if err != nil {
		if errors.Is(err, ErrAbandoned) {
			t.Skipf("fault unrepairable on this benchmark: %v", err)
		}
		t.Fatalf("Repair: %v", err)
	}
	if rec.Rung != RungReschedule || rec.Outcome != OutcomeDegraded {
		t.Errorf("rung/outcome = %s/%s, want %s/%s", rec.Rung, rec.Outcome, RungReschedule, OutcomeDegraded)
	}
	if !s.Solution().Degraded() {
		t.Error("degraded repair left no Degradation record")
	}
	for id, bo := range s.Solution().Schedule.Ops {
		if bo.Comp == victim && bo.End > at {
			t.Errorf("op %d still uses failed component %d past the cut", id, victim)
		}
	}
	if err := s.Solution().Validate(); err != nil {
		t.Fatalf("repaired solution invalid: %v", err)
	}
}

// TestSessionRepairDeterminism: the same session seed and the same fault
// sequence produce byte-identical repairs at any routing worker-pool
// size — repairs are fingerprintable.
func TestSessionRepairDeterminism(t *testing.T) {
	run := func(workers int) []string {
		s := open(t, "Synthetic4", workers)
		at := s.Solution().Schedule.Makespan / 3
		cell := suffixCell(t, s, at)
		var prints []string
		rec, err := s.Repair(context.Background(), FaultReport{At: at, Cells: []route.Cell{cell}})
		if err != nil {
			t.Fatalf("workers=%d first repair: %v", workers, err)
		}
		prints = append(prints, rec.Fingerprint)
		at2 := at + (s.Solution().Schedule.Makespan-at)/2
		cell2 := suffixCell(t, s, at2)
		rec2, err := s.Repair(context.Background(), FaultReport{At: at2, Cells: []route.Cell{cell2}})
		if err != nil {
			t.Fatalf("workers=%d second repair: %v", workers, err)
		}
		prints = append(prints, rec2.Fingerprint)
		return prints
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("repair %d fingerprint differs across pool sizes: %s != %s", i, a[i], b[i])
		}
	}
}

// TestSessionAbandon: losing the only component of a needed type is
// structurally unrepairable — the session is abandoned, not left broken.
func TestSessionAbandon(t *testing.T) {
	g := chainOnMixer()
	alloc := chip.Allocation{}
	alloc[assay.Mix] = 1
	opts := core.DefaultOptions()
	opts.Place.Imax = 40
	sol, err := core.Synthesize(g, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("s-abandon", sol, alloc)
	if err != nil {
		t.Fatal(err)
	}
	// The open-time what-if study must already flag the single mixer as
	// a single point of failure.
	if snap := s.Snapshot(); len(snap.SinglePoints) == 0 {
		t.Error("what-if analysis missed the single point of failure")
	}

	mixer := sol.Schedule.Ops[0].Comp
	at := sol.Schedule.Ops[0].End // first op executed, chain pending
	rec, err := s.Repair(context.Background(), FaultReport{At: at, Comps: []chip.CompID{mixer}})
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("err = %v, want ErrAbandoned", err)
	}
	if rec.Outcome != OutcomeAbandoned || rec.Err == "" {
		t.Errorf("record = %+v, want abandoned with cause", rec)
	}
	if s.Snapshot().State != Abandoned {
		t.Errorf("state = %s, want %s", s.Snapshot().State, Abandoned)
	}
	// Abandoned sessions reject further reports.
	if _, err := s.Repair(context.Background(), FaultReport{At: at, Comps: []chip.CompID{mixer}}); !errors.Is(err, ErrNotActive) {
		t.Errorf("post-abandon repair err = %v, want ErrNotActive", err)
	}
}

func chainOnMixer() *assay.Graph {
	b := assay.NewBuilder("chain-mix")
	var prev assay.OpID
	for i := 0; i < 4; i++ {
		op := b.AddOp("m", assay.Mix, unit.Seconds(2), fluid.Fluid{D: 1e-6})
		if i > 0 {
			b.AddDep(prev, op)
		}
		prev = op
	}
	return b.MustBuild()
}

// TestSessionReportValidation: malformed reports are rejected without
// changing session state.
func TestSessionReportValidation(t *testing.T) {
	s := open(t, "Synthetic3", 0)
	before := s.Snapshot()
	ctx := context.Background()

	if _, err := s.Repair(ctx, FaultReport{At: 0}); err == nil {
		t.Error("empty report accepted")
	}
	if _, err := s.Repair(ctx, FaultReport{At: 0, Cells: []route.Cell{{X: -1, Y: 0}}}); err == nil {
		t.Error("out-of-plane cell accepted")
	}
	if _, err := s.Repair(ctx, FaultReport{At: 0, Comps: []chip.CompID{chip.CompID(len(s.Solution().Comps))}}); err == nil {
		t.Error("unknown component accepted")
	}
	// Monotonicity: a report may not precede the execution high-water.
	at := s.Solution().Schedule.Makespan / 2
	cell := suffixCell(t, s, at)
	if _, err := s.Repair(ctx, FaultReport{At: at, Cells: []route.Cell{cell}}); err != nil {
		t.Fatalf("valid repair failed: %v", err)
	}
	if _, err := s.Repair(ctx, FaultReport{At: at - 1, Cells: []route.Cell{cell}}); err == nil {
		t.Error("time-travelling report accepted")
	}
	if got := s.Snapshot(); got.CellsLost != 1 {
		t.Errorf("rejected reports changed state: %+v vs %+v", got, before)
	}
}

// TestSessionPreflightRungs: before execution starts the ladder may move
// the placement. Drive the dilate and SA rungs directly and hold their
// outputs to the same audit bar as any repair.
func TestSessionPreflightRungs(t *testing.T) {
	for _, rung := range []string{RungDilate, RungSA} {
		t.Run(rung, func(t *testing.T) {
			s := open(t, "Synthetic3", 0)
			banned := make([]bool, len(s.Solution().Comps))
			defects := []route.Cell{{X: 0, Y: 0}}
			sol, err := s.attempt(context.Background(), rung, 0, banned, defects)
			if err != nil {
				t.Fatalf("attempt(%s): %v", rung, err)
			}
			if rep := s.audit(sol, 0, banned, defects, rung); !rep.OK() {
				t.Fatalf("%s repair failed its audit:\n%s", rung, rep)
			}
			if err := sol.Validate(); err != nil {
				t.Fatalf("%s solution invalid: %v", rung, err)
			}
		})
	}
}

// TestSessionBaselineRejected: baseline solutions have no storage-aware
// suffix re-entry and cannot be pinned to a session.
func TestSessionBaselineRejected(t *testing.T) {
	bm := benchdata.Synthetic(3)
	opts := core.DefaultOptions()
	opts.Place.Imax = 40
	sol, err := core.SynthesizeBaseline(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("s-base", sol, bm.Alloc); err == nil {
		t.Error("baseline solution accepted")
	}
}

func TestSessionClose(t *testing.T) {
	s := open(t, "PCR", 0)
	s.Close()
	if s.Snapshot().State != Closed {
		t.Errorf("state = %s, want %s", s.Snapshot().State, Closed)
	}
	if _, err := s.Repair(context.Background(), FaultReport{At: 0, Cells: []route.Cell{{X: 1, Y: 1}}}); !errors.Is(err, ErrNotActive) {
		t.Errorf("repair on closed session err = %v, want ErrNotActive", err)
	}
}
