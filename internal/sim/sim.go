// Package sim replays a complete synthesis Solution as a discrete event
// timeline and re-verifies it against the physical rules of a DCSA-based
// biochip, independently of how the solution was produced:
//
//   - a component executes at most one operation at a time;
//   - an operation starts only when each of its input fluids is present at
//     its component — either produced there and consumed in place, or
//     delivered by a transportation task that has arrived;
//   - every fluid has a single consistent location over time (inside a
//     component, parked in channel storage, moving along its routed path,
//     or consumed);
//   - transportation tasks never share a grid cell while their occupancy
//     windows overlap (the transportation conflicts of Section II-C-2).
//
// The replay also produces the event log used by the examples and the
// Gantt renderer.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// EventKind labels a timeline event.
type EventKind string

// The event kinds emitted by a replay.
const (
	OpStart         EventKind = "op-start"
	OpEnd           EventKind = "op-end"
	TransportDepart EventKind = "transport-depart"
	TransportArrive EventKind = "transport-arrive"
	CacheStart      EventKind = "cache-start"
	CacheEnd        EventKind = "cache-end"
	WashStart       EventKind = "wash-start"
	WashEnd         EventKind = "wash-end"
)

// Event is one timeline entry.
type Event struct {
	Time unit.Time
	Kind EventKind
	// Op is the related operation (producer for transports/caches/washes).
	Op assay.OpID
	// Comp is the component involved (NoComp for pure channel events).
	Comp chip.CompID
	Note string
}

// Replay is the verified execution trace of a solution.
type Replay struct {
	Events   []Event
	Makespan unit.Time
	// BusyTime is the per-component total operation time.
	BusyTime []unit.Time
	// Moves counts transport events; Caches counts channel-storage
	// episodes observed.
	Moves, Caches int
}

// Run replays and verifies the solution.
func Run(sol *core.Solution) (*Replay, error) {
	if sol == nil {
		return nil, fmt.Errorf("sim: nil solution")
	}
	// Stage-level validators first: they check structural properties.
	if err := schedule.Validate(sol.Schedule); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := route.Validate(sol.Routing, sol.Schedule, sol.Comps, sol.Placement, sol.Opts.Route); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	r := &Replay{BusyTime: make([]unit.Time, len(sol.Comps))}
	g := sol.Assay
	sched := sol.Schedule

	// Independent replay of input delivery, tracked per fluidic
	// dependency: each edge is served either by a dedicated transport or
	// by in-place consumption on a shared component.
	type edgeKey struct{ p, c assay.OpID }
	delivered := make(map[edgeKey]unit.Time)
	for _, tr := range sched.Transports {
		delivered[edgeKey{tr.Producer, tr.Consumer}] = tr.Arrive
	}
	for _, bo := range sched.Ops {
		for _, p := range g.Parents(bo.Op) {
			if bo.InPlace && bo.InPlaceParent == p {
				// In place: the fluid is already inside bo.Comp; it must
				// have been produced there and before this op starts.
				pp := sched.Ops[p]
				if pp.Comp != bo.Comp {
					return nil, fmt.Errorf("sim: op %d consumes out(%d) in place but they run on different components",
						bo.Op, p)
				}
				if pp.End > bo.Start {
					return nil, fmt.Errorf("sim: op %d starts at %v before in-place input out(%d) is ready at %v",
						bo.Op, bo.Start, p, pp.End)
				}
				continue
			}
			at, ok := delivered[edgeKey{p, bo.Op}]
			if !ok {
				return nil, fmt.Errorf("sim: input out(%d) never delivered to op %d", p, bo.Op)
			}
			if at > bo.Start {
				return nil, fmt.Errorf("sim: op %d starts at %v before input out(%d) arrives at %v",
					bo.Op, bo.Start, p, at)
			}
		}
	}

	// Component exclusivity via sweep.
	type span struct {
		s, e unit.Time
		op   assay.OpID
	}
	perComp := make([][]span, len(sol.Comps))
	for _, bo := range sched.Ops {
		perComp[bo.Comp] = append(perComp[bo.Comp], span{bo.Start, bo.End, bo.Op})
		r.BusyTime[bo.Comp] += bo.End - bo.Start
	}
	for c, spans := range perComp {
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e {
				return nil, fmt.Errorf("sim: component %d runs ops %d and %d concurrently",
					c, spans[i-1].op, spans[i].op)
			}
		}
	}

	// Emit the event log.
	for _, bo := range sched.Ops {
		r.Events = append(r.Events,
			Event{Time: bo.Start, Kind: OpStart, Op: bo.Op, Comp: bo.Comp, Note: g.Op(bo.Op).Name},
			Event{Time: bo.End, Kind: OpEnd, Op: bo.Op, Comp: bo.Comp, Note: g.Op(bo.Op).Name},
		)
	}
	for _, tr := range sched.Transports {
		r.Events = append(r.Events,
			Event{Time: tr.Depart, Kind: TransportDepart, Op: tr.Producer, Comp: tr.From,
				Note: fmt.Sprintf("out(%s) → %s", g.Op(tr.Producer).Name, sol.Comps[tr.To].Name())},
			Event{Time: tr.Arrive, Kind: TransportArrive, Op: tr.Producer, Comp: tr.To,
				Note: fmt.Sprintf("out(%s) delivered", g.Op(tr.Producer).Name)},
		)
		r.Moves++
	}
	for _, ce := range sched.Caches {
		r.Events = append(r.Events,
			Event{Time: ce.Start, Kind: CacheStart, Op: ce.Producer, Comp: ce.From,
				Note: fmt.Sprintf("out(%s) parked in channel", g.Op(ce.Producer).Name)},
			Event{Time: ce.End, Kind: CacheEnd, Op: ce.Producer, Comp: ce.From,
				Note: fmt.Sprintf("out(%s) leaves channel storage", g.Op(ce.Producer).Name)},
		)
		r.Caches++
	}
	for _, w := range sched.Washes {
		r.Events = append(r.Events,
			Event{Time: w.Start, Kind: WashStart, Op: w.Residue, Comp: w.Comp,
				Note: fmt.Sprintf("washing residue of %s", g.Op(w.Residue).Name)},
			Event{Time: w.End, Kind: WashEnd, Op: w.Residue, Comp: w.Comp},
		)
	}
	sort.SliceStable(r.Events, func(i, j int) bool {
		if r.Events[i].Time != r.Events[j].Time {
			return r.Events[i].Time < r.Events[j].Time
		}
		return r.Events[i].Kind < r.Events[j].Kind
	})
	r.Makespan = sched.Makespan
	return r, nil
}
