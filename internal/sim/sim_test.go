package sim

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/unit"
)

func opts() core.Options {
	o := core.DefaultOptions()
	o.Place.Imax = 40
	return o
}

func TestReplayAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			for _, baseline := range []bool{false, true} {
				var sol *core.Solution
				var err error
				if baseline {
					sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, opts())
				} else {
					sol, err = core.Synthesize(bm.Graph, bm.Alloc, opts())
				}
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Run(sol)
				if err != nil {
					t.Fatalf("baseline=%v: %v", baseline, err)
				}
				if rep.Makespan != sol.Schedule.Makespan {
					t.Errorf("replay makespan %v != schedule %v", rep.Makespan, sol.Schedule.Makespan)
				}
				if rep.Moves != len(sol.Schedule.Transports) {
					t.Errorf("replay moves %d != transports %d", rep.Moves, len(sol.Schedule.Transports))
				}
			}
		})
	}
}

func TestReplayEventsOrderedAndPaired(t *testing.T) {
	bm := benchdata.IVD()
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(rep.Events); i++ {
		if rep.Events[i].Time < rep.Events[i-1].Time {
			t.Fatal("events not time ordered")
		}
	}
	// Every op has exactly one start and one end, start before end.
	starts := map[assay.OpID]unit.Time{}
	ends := map[assay.OpID]unit.Time{}
	for _, e := range rep.Events {
		switch e.Kind {
		case OpStart:
			if _, dup := starts[e.Op]; dup {
				t.Fatalf("op %d started twice", e.Op)
			}
			starts[e.Op] = e.Time
		case OpEnd:
			if _, dup := ends[e.Op]; dup {
				t.Fatalf("op %d ended twice", e.Op)
			}
			ends[e.Op] = e.Time
		}
	}
	if len(starts) != bm.Graph.NumOps() || len(ends) != bm.Graph.NumOps() {
		t.Fatalf("starts/ends %d/%d for %d ops", len(starts), len(ends), bm.Graph.NumOps())
	}
	for op, s := range starts {
		if ends[op] < s {
			t.Errorf("op %d ends before it starts", op)
		}
	}
}

func TestReplayBusyTimeMatchesDurations(t *testing.T) {
	bm := benchdata.PCR()
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sol)
	if err != nil {
		t.Fatal(err)
	}
	var total unit.Time
	for _, b := range rep.BusyTime {
		total += b
	}
	var want unit.Time
	for _, op := range bm.Graph.Operations() {
		want += op.Duration
	}
	if total != want {
		t.Errorf("total busy %v != sum of durations %v", total, want)
	}
}

func TestRunRejectsCorruptedSolution(t *testing.T) {
	bm := benchdata.IVD()
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a start time on a copy of the decisions.
	bad := *sol
	ops2 := append(sol.Schedule.Ops[:0:0], sol.Schedule.Ops...)
	ops2[0].Start += unit.Seconds(1000) // end no longer start+duration
	sched2 := *sol.Schedule
	sched2.Ops = ops2
	bad.Schedule = &sched2
	if _, err := Run(&bad); err == nil {
		t.Error("corrupted schedule not rejected")
	}
	if _, err := Run(nil); err == nil {
		t.Error("nil solution not rejected")
	}
}
