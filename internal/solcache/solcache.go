// Package solcache is the content-addressed result cache of the
// synthesis service. The paper's flow is deterministic in its inputs —
// every stage takes an explicit seed — so a complete solution is a pure
// function of (assay, allocation, options, algorithm). That makes results
// content-addressable: the cache key is the SHA-256 of a canonical
// encoding of those inputs, and the value is the solio-serialized
// solution, byte-identical to what a fresh synthesis of the same request
// would produce. Entries are bounded by total byte size with
// least-recently-used eviction, and hit/miss counters feed the service's
// /metrics endpoint.
package solcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/fault"
)

// Cache is a thread-safe LRU keyed by content hash.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     int64
	misses   int64
	// flt injects cache faults (forced misses, dropped puts) when armed;
	// nil in production. Both faults are safe by construction: the cache
	// is a pure accelerator, so losing an entry can only cost a
	// recomputation, never correctness.
	flt *fault.Plan
}

type entry struct {
	key string
	val []byte
}

// Stats is a point-in-time aggregate of the cache.
type Stats struct {
	Entries  int
	Bytes    int64
	MaxBytes int64
	Hits     int64
	Misses   int64
}

// New creates a cache bounded to maxBytes of stored values (keys and
// bookkeeping are not counted). maxBytes <= 0 selects a 256 MiB default.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Key hashes the canonical request parts into the content address. The
// caller is responsible for canonical part encodings (e.g. re-encoding a
// decoded assay through its stable MarshalJSON rather than hashing the
// client's formatting); each part is length-prefixed so distinct splits
// can never collide.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 7; i >= 0; i-- {
			lenBuf[i] = byte(n)
			n >>= 8
		}
		h.Write(lenBuf[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ValidKey reports whether s has the shape Key produces: exactly 64
// lowercase hex digits. The cluster's peer endpoints accept keys from
// the network and must reject anything else before touching the cache
// (a key is also a URL path segment there, so shape-checking doubles as
// input sanitization).
func ValidKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SetFault arms the cache's injection points (solcache.get.miss,
// solcache.put.drop) on the given plan; nil disables injection.
func (c *Cache) SetFault(p *fault.Plan) {
	c.mu.Lock()
	c.flt = p
	c.mu.Unlock()
}

// Get returns a copy of the cached value and records a hit or miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flt.Fire(fault.CacheGetMiss) {
		c.misses++
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stores a copy of val under key, evicting least-recently-used
// entries if the byte bound would be exceeded. Values larger than the
// bound are not stored at all. Re-putting an existing key refreshes its
// recency (the value is content-addressed, so it cannot change).
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flt.Fire(fault.CachePutDrop) {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	el := c.ll.PushFront(&entry{key: key, val: cp})
	c.items[key] = el
	c.bytes += int64(len(cp))
	for c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
	}
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:  c.ll.Len(),
		Bytes:    c.bytes,
		MaxBytes: c.maxBytes,
		Hits:     c.hits,
		Misses:   c.misses,
	}
}
