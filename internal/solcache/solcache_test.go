package solcache

import (
	"repro/internal/fault"

	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestKeyLengthPrefixPreventsSplitCollisions(t *testing.T) {
	a := Key([]byte("ab"), []byte("c"))
	b := Key([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("different part splits hashed to the same key")
	}
	if a != Key([]byte("ab"), []byte("c")) {
		t.Fatal("Key is not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a SHA-256 hex digest", a)
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(1 << 20)
	key := Key([]byte("assay"), []byte("opts"))
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, []byte("solution"))
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, []byte("solution")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Returned slice is a copy: corrupting it must not poison the cache.
	got[0] = 'X'
	again, _ := c.Get(key)
	if !bytes.Equal(again, []byte("solution")) {
		t.Fatal("cache value aliased caller's slice")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Bytes != int64(len("solution")) {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New(100)
	val := make([]byte, 40)
	c.Put("a", val)
	c.Put("b", val)
	// Touch "a" so "b" is the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", val) // 120 bytes total: evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s evicted wrongly", k)
		}
	}
	if s := c.Stats(); s.Bytes > 100 {
		t.Fatalf("cache over byte bound: %+v", s)
	}
}

func TestOversizeValueRejected(t *testing.T) {
	c := New(10)
	c.Put("big", make([]byte, 11))
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("oversize value stored: %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key([]byte{byte(i % 32)})
				c.Put(k, bytes.Repeat([]byte{byte(g)}, 64))
				c.Get(k)
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries == 0 || s.Bytes == 0 {
		t.Fatalf("stats %+v after concurrent load", s)
	}
	if s.Entries > 32 {
		t.Fatalf("more entries than distinct keys: %+v", s)
	}
}

func TestRePutRefreshesRecency(t *testing.T) {
	c := New(100)
	val := make([]byte, 40)
	c.Put("a", val)
	c.Put("b", val)
	c.Put("a", val) // refresh a: b becomes LRU
	c.Put("c", val)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted after a's refresh")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("refreshed entry a evicted")
	}
}

func ExampleKey() {
	fmt.Println(Key([]byte(`{"name":"PCR"}`), []byte(`{"seed":1}`))[:16])
	// Output: 058291ebe4aead90
}

// TestFaultInjection: a forced miss hides a present entry (counted as a
// miss) and a dropped put leaves the cache unchanged — both degrade to
// recomputation, never to corruption.
func TestFaultInjection(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", []byte("v"))

	c.SetFault(fault.NewPlan(5).Arm(fault.CacheGetMiss, fault.Once(0)))
	if _, ok := c.Get("k"); ok {
		t.Fatal("injected miss still returned the entry")
	}
	if v, ok := c.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("entry gone after injected miss: %q %v", v, ok)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss 1 hit", s)
	}

	c.SetFault(fault.NewPlan(5).Arm(fault.CachePutDrop, fault.Once(0)))
	c.Put("k2", []byte("v2"))
	c.SetFault(nil)
	if _, ok := c.Get("k2"); ok {
		t.Fatal("dropped put stored the value anyway")
	}
	c.Put("k2", []byte("v2"))
	if v, ok := c.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("put after injected drop failed: %q %v", v, ok)
	}
}
