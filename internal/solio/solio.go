// Package solio serializes complete synthesis solutions to JSON and back.
// The format embeds the assay, the algorithm options, every scheduling
// decision, the placement and all routed paths, so a decoded solution
// passes the same validators as a freshly synthesized one and can be fed
// to the visualizers or external tooling.
package solio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

type doc struct {
	Version  int             `json:"version"`
	Baseline bool            `json:"baseline"`
	Assay    json.RawMessage `json:"assay"`
	Options  docOptions      `json:"options"`
	Comps    []docComp       `json:"components"`
	Schedule docSchedule     `json:"schedule"`
	Place    docPlacement    `json:"placement"`
	Routes   []docRoute      `json:"routes"`
	CPUMs    float64         `json:"cpu_ms"`
	// Degradations is present only for solutions that used a
	// degradation-ladder rung (internal/core); omitting it when empty
	// keeps clean-run encodings byte-identical to the historical format.
	Degradations []docDegradation `json:"degradations,omitempty"`
}

type docDegradation struct {
	Stage  string `json:"stage"`
	Event  string `json:"event"`
	Detail string `json:"detail,omitempty"`
}

type docOptions struct {
	TCms    int64   `json:"tc_ms"`
	T0      float64 `json:"t0"`
	Tmin    float64 `json:"tmin"`
	Alpha   float64 `json:"alpha"`
	Imax    int     `json:"imax"`
	Beta    float64 `json:"beta"`
	Gamma   float64 `json:"gamma"`
	Seed    uint64  `json:"seed"`
	Spacing int     `json:"spacing"`
	We      float64 `json:"we"`
	PitchUm int64   `json:"pitch_um"`
	FastDms int64   `json:"wash_fast_ms"`
	SlowDms int64   `json:"wash_slow_ms"`
	FastD   float64 `json:"wash_fast_d"`
	SlowD   float64 `json:"wash_slow_d"`
}

type docComp struct {
	Type  string `json:"type"`
	Index int    `json:"index"`
}

type docSchedule struct {
	Ops        []docOp        `json:"operations"`
	Transports []docTransport `json:"transports"`
	Caches     []docCache     `json:"caches"`
	Washes     []docWash      `json:"washes"`
	MakespanMs int64          `json:"makespan_ms"`
}

type docOp struct {
	Op            int   `json:"op"`
	Comp          int   `json:"comp"`
	StartMs       int64 `json:"start_ms"`
	EndMs         int64 `json:"end_ms"`
	InPlace       bool  `json:"in_place,omitempty"`
	InPlaceParent int   `json:"in_place_parent,omitempty"`
}

type docTransport struct {
	ID          int     `json:"id"`
	Producer    int     `json:"producer"`
	Consumer    int     `json:"consumer"`
	From        int     `json:"from"`
	To          int     `json:"to"`
	DepartMs    int64   `json:"depart_ms"`
	ArriveMs    int64   `json:"arrive_ms"`
	FromChannel bool    `json:"from_channel,omitempty"`
	CacheMs     int64   `json:"cache_start_ms,omitempty"`
	Fluid       string  `json:"fluid"`
	D           float64 `json:"diffusion"`
	WashMs      int64   `json:"wash_ms"`
}

type docCache struct {
	Producer int     `json:"producer"`
	From     int     `json:"from"`
	StartMs  int64   `json:"start_ms"`
	EndMs    int64   `json:"end_ms"`
	Fluid    string  `json:"fluid"`
	D        float64 `json:"diffusion"`
}

type docWash struct {
	Comp    int   `json:"comp"`
	Residue int   `json:"residue"`
	StartMs int64 `json:"start_ms"`
	EndMs   int64 `json:"end_ms"`
}

type docPlacement struct {
	W     int       `json:"w"`
	H     int       `json:"h"`
	Rects []docRect `json:"rects"`
}

type docRect struct {
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`
}

type docRoute struct {
	Task int      `json:"task"`
	Path [][2]int `json:"path"`
}

// Encode writes the solution as indented JSON.
func Encode(w io.Writer, sol *core.Solution) error {
	if sol == nil {
		return fmt.Errorf("solio: nil solution")
	}
	assayJSON, err := sol.Assay.MarshalJSON()
	if err != nil {
		return err
	}
	d := doc{
		Version:  FormatVersion,
		Baseline: sol.Baseline,
		Assay:    assayJSON,
		Options: docOptions{
			TCms:    int64(sol.Opts.Schedule.TC),
			T0:      sol.Opts.Place.T0,
			Tmin:    sol.Opts.Place.Tmin,
			Alpha:   sol.Opts.Place.Alpha,
			Imax:    sol.Opts.Place.Imax,
			Beta:    sol.Opts.Place.Beta,
			Gamma:   sol.Opts.Place.Gamma,
			Seed:    sol.Opts.Place.Seed,
			Spacing: sol.Opts.Place.Spacing,
			We:      sol.Opts.Route.We,
			PitchUm: int64(sol.Opts.Route.Pitch),
			FastDms: int64(sol.Opts.Schedule.Wash.FastWash),
			SlowDms: int64(sol.Opts.Schedule.Wash.SlowWash),
			FastD:   float64(sol.Opts.Schedule.Wash.FastD),
			SlowD:   float64(sol.Opts.Schedule.Wash.SlowD),
		},
		CPUMs: float64(sol.CPU.Microseconds()) / 1000,
	}
	for _, c := range sol.Comps {
		d.Comps = append(d.Comps, docComp{Type: c.Kind.Type.String(), Index: c.Index})
	}
	for _, bo := range sol.Schedule.Ops {
		d.Schedule.Ops = append(d.Schedule.Ops, docOp{
			Op: int(bo.Op), Comp: int(bo.Comp),
			StartMs: int64(bo.Start), EndMs: int64(bo.End),
			InPlace: bo.InPlace, InPlaceParent: int(bo.InPlaceParent),
		})
	}
	for _, tr := range sol.Schedule.Transports {
		d.Schedule.Transports = append(d.Schedule.Transports, docTransport{
			ID: tr.ID, Producer: int(tr.Producer), Consumer: int(tr.Consumer),
			From: int(tr.From), To: int(tr.To),
			DepartMs: int64(tr.Depart), ArriveMs: int64(tr.Arrive),
			FromChannel: tr.FromChannel, CacheMs: int64(tr.CacheStart),
			Fluid: tr.Fluid.Name, D: float64(tr.Fluid.D), WashMs: int64(tr.WashTime),
		})
	}
	for _, ce := range sol.Schedule.Caches {
		d.Schedule.Caches = append(d.Schedule.Caches, docCache{
			Producer: int(ce.Producer), From: int(ce.From),
			StartMs: int64(ce.Start), EndMs: int64(ce.End),
			Fluid: ce.Fluid.Name, D: float64(ce.Fluid.D),
		})
	}
	for _, ws := range sol.Schedule.Washes {
		d.Schedule.Washes = append(d.Schedule.Washes, docWash{
			Comp: int(ws.Comp), Residue: int(ws.Residue),
			StartMs: int64(ws.Start), EndMs: int64(ws.End),
		})
	}
	d.Schedule.MakespanMs = int64(sol.Schedule.Makespan)
	d.Place = docPlacement{W: sol.Placement.W, H: sol.Placement.H}
	for _, r := range sol.Placement.Rects {
		d.Place.Rects = append(d.Place.Rects, docRect{X: r.X, Y: r.Y, W: r.W, H: r.H})
	}
	for _, rt := range sol.Routing.Routes {
		dr := docRoute{Task: rt.Task.ID}
		for _, c := range rt.Path {
			dr.Path = append(dr.Path, [2]int{c.X, c.Y})
		}
		d.Routes = append(d.Routes, dr)
	}
	for _, dg := range sol.Degradations {
		d.Degradations = append(d.Degradations, docDegradation{Stage: dg.Stage, Event: dg.Event, Detail: dg.Detail})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Decode reconstructs a solution from its JSON form and re-validates it.
func Decode(r io.Reader) (*core.Solution, error) {
	sol, err := DecodeUnvalidated(r)
	if err != nil {
		return nil, err
	}
	if err := sol.Validate(); err != nil {
		return nil, fmt.Errorf("solio: decoded solution invalid: %w", err)
	}
	return sol, nil
}

// DecodeUnvalidated reconstructs a solution without running the stage
// validators, so a tampered or suspect file can be handed to the
// independent auditor (core.Audit), which reports violations instead of
// refusing to decode. Only structural integrity is still enforced — the
// JSON must parse, reference a decodable assay and keep operation records
// indexable — because nothing downstream can interpret records it cannot
// even address.
func DecodeUnvalidated(r io.Reader) (*core.Solution, error) {
	var d doc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("solio: %w", err)
	}
	if d.Version != FormatVersion {
		return nil, fmt.Errorf("solio: unsupported format version %d", d.Version)
	}
	g, err := assay.Decode(bytes.NewReader(d.Assay))
	if err != nil {
		return nil, err
	}

	opts := core.Options{
		Schedule: schedule.Options{
			TC: unit.Time(d.Options.TCms),
			Wash: fluid.WashModel{
				FastD: unit.Diffusion(d.Options.FastD), FastWash: unit.Time(d.Options.FastDms),
				SlowD: unit.Diffusion(d.Options.SlowD), SlowWash: unit.Time(d.Options.SlowDms),
			},
		},
		Place: place.Params{
			T0: d.Options.T0, Tmin: d.Options.Tmin, Alpha: d.Options.Alpha,
			Imax: d.Options.Imax, Beta: d.Options.Beta, Gamma: d.Options.Gamma,
			Seed: d.Options.Seed, Spacing: d.Options.Spacing,
		},
		Route: route.Params{We: d.Options.We, Pitch: unit.Length(d.Options.PitchUm)},
	}

	comps := make([]chip.Component, len(d.Comps))
	for i, dc := range d.Comps {
		t, err := assay.ParseOpType(dc.Type)
		if err != nil {
			return nil, fmt.Errorf("solio: component %d: %w", i, err)
		}
		comps[i] = chip.Component{ID: chip.CompID(i), Kind: chip.KindFor(t), Index: dc.Index}
	}

	sched := &schedule.Result{Assay: g, Comps: comps, Opts: opts.Schedule,
		Makespan: unit.Time(d.Schedule.MakespanMs)}
	sched.Ops = make([]schedule.BoundOp, len(d.Schedule.Ops))
	for i, o := range d.Schedule.Ops {
		if o.Op < 0 || o.Op >= g.NumOps() || o.Op != i {
			return nil, fmt.Errorf("solio: operation record %d malformed", i)
		}
		sched.Ops[i] = schedule.BoundOp{
			Op: assay.OpID(o.Op), Comp: chip.CompID(o.Comp),
			Start: unit.Time(o.StartMs), End: unit.Time(o.EndMs),
			InPlace: o.InPlace, InPlaceParent: assay.OpID(o.InPlaceParent),
		}
	}
	for _, tr := range d.Schedule.Transports {
		sched.Transports = append(sched.Transports, schedule.Transport{
			ID: tr.ID, Producer: assay.OpID(tr.Producer), Consumer: assay.OpID(tr.Consumer),
			From: chip.CompID(tr.From), To: chip.CompID(tr.To),
			Depart: unit.Time(tr.DepartMs), Arrive: unit.Time(tr.ArriveMs),
			FromChannel: tr.FromChannel, CacheStart: unit.Time(tr.CacheMs),
			Fluid:    fluid.Fluid{Name: tr.Fluid, D: unit.Diffusion(tr.D)},
			WashTime: unit.Time(tr.WashMs),
		})
	}
	for _, ce := range d.Schedule.Caches {
		sched.Caches = append(sched.Caches, schedule.ChannelCache{
			Producer: assay.OpID(ce.Producer), From: chip.CompID(ce.From),
			Start: unit.Time(ce.StartMs), End: unit.Time(ce.EndMs),
			Fluid: fluid.Fluid{Name: ce.Fluid, D: unit.Diffusion(ce.D)},
		})
	}
	for _, ws := range d.Schedule.Washes {
		sched.Washes = append(sched.Washes, schedule.ComponentWash{
			Comp: chip.CompID(ws.Comp), Residue: assay.OpID(ws.Residue),
			Start: unit.Time(ws.StartMs), End: unit.Time(ws.EndMs),
		})
	}

	pl := &place.Placement{W: d.Place.W, H: d.Place.H}
	for _, r := range d.Place.Rects {
		pl.Rects = append(pl.Rects, place.Rect{X: r.X, Y: r.Y, W: r.W, H: r.H})
	}

	// Rebuild routing tasks from the schedule so the paths can be
	// validated against exactly the same windows.
	tasks := route.TasksFrom(sched)
	byID := make(map[int]route.Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}
	routing := &route.Result{GridW: pl.W, GridH: pl.H, Pitch: opts.Route.Pitch}
	for _, dr := range d.Routes {
		t, ok := byID[dr.Task]
		if !ok {
			return nil, fmt.Errorf("solio: route for unknown task %d", dr.Task)
		}
		rt := route.RoutedTask{Task: t}
		for _, xy := range dr.Path {
			rt.Path = append(rt.Path, route.Cell{X: xy[0], Y: xy[1]})
		}
		routing.Routes = append(routing.Routes, rt)
	}
	route.RecomputeMetrics(routing, sched, comps, pl, opts.Route)

	sol := &core.Solution{
		Assay: g, Comps: comps, Opts: opts,
		Schedule: sched, Placement: pl, Routing: routing,
		Baseline: d.Baseline,
	}
	for _, dg := range d.Degradations {
		sol.Degradations = append(sol.Degradations, core.Degradation{Stage: dg.Stage, Event: dg.Event, Detail: dg.Detail})
	}
	return sol, nil
}
