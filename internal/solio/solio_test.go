package solio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/core"
)

func solve(t *testing.T, name string, baseline bool) *core.Solution {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Place.Imax = 30
	var sol *core.Solution
	if baseline {
		sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, o)
	} else {
		sol, err = core.Synthesize(bm.Graph, bm.Alloc, o)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestRoundTripPreservesEverything(t *testing.T) {
	for _, name := range []string{"PCR", "IVD", "Synthetic1"} {
		for _, baseline := range []bool{false, true} {
			sol := solve(t, name, baseline)
			var buf bytes.Buffer
			if err := Encode(&buf, sol); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := Decode(&buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if got.Baseline != baseline {
				t.Errorf("%s: baseline flag lost", name)
			}
			a, b := sol.Metrics(), got.Metrics()
			if a.ExecutionTime != b.ExecutionTime ||
				a.ChannelLength != b.ChannelLength ||
				a.CacheTime != b.CacheTime ||
				a.ChannelWashTime != b.ChannelWashTime ||
				a.ComponentWashTime != b.ComponentWashTime ||
				a.Transports != b.Transports {
				t.Errorf("%s: metrics changed: %+v vs %+v", name, a, b)
			}
			if err := got.Validate(); err != nil {
				t.Errorf("%s: decoded solution invalid: %v", name, err)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	sol := solve(t, "IVD", false)
	var buf bytes.Buffer
	if err := Encode(&buf, sol); err != nil {
		t.Fatal(err)
	}
	orig := buf.String()

	// Wrong version.
	bad := strings.Replace(orig, `"version": 1`, `"version": 99`, 1)
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}
	// Unknown field.
	bad = strings.Replace(orig, `"version": 1`, `"version": 1, "junk": 0`, 1)
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("unknown field accepted")
	}
	// Truncated document.
	if _, err := Decode(strings.NewReader(orig[:len(orig)/2])); err == nil {
		t.Error("truncated document accepted")
	}
	// A corrupted start time must fail validation on decode.
	bad = strings.Replace(orig, `"start_ms": 0`, `"start_ms": 999999`, 1)
	if bad != orig {
		if _, err := Decode(strings.NewReader(bad)); err == nil {
			t.Error("corrupted schedule accepted")
		}
	}
}

func TestEncodeNil(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil solution accepted")
	}
}

// TestRoundTripRandomSolutions pushes randomly generated assays through
// synthesis and the serialization round trip.
func TestRoundTripRandomSolutions(t *testing.T) {
	if testing.Short() {
		t.Skip("random round trips in short mode")
	}
	for seed := uint64(1); seed <= 8; seed++ {
		alloc := chip.Allocation{2, 1, 0, 1}
		g := benchdata.GenerateSynthetic(fmt.Sprintf("rt%d", seed), 12+int(seed), alloc, seed)
		o := core.DefaultOptions()
		o.Place.Imax = 20
		sol, err := core.Synthesize(g, alloc, o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, sol); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Metrics().ExecutionTime != sol.Metrics().ExecutionTime {
			t.Fatalf("seed %d: metrics drifted", seed)
		}
	}
}

// TestDecodeUnvalidatedAuditsTampered: a tampered file that Decode
// rejects must still come out of DecodeUnvalidated as an addressable
// solution so the independent auditor can report the violation itself.
func TestDecodeUnvalidatedAuditsTampered(t *testing.T) {
	sol := solve(t, "PCR", false)
	var buf bytes.Buffer
	if err := Encode(&buf, sol); err != nil {
		t.Fatal(err)
	}
	orig := buf.String()
	mk := fmt.Sprintf(`"makespan_ms": %d`, int64(sol.Schedule.Makespan))
	bad := strings.Replace(orig, mk, fmt.Sprintf(`"makespan_ms": %d`, int64(sol.Schedule.Makespan)+1), 1)
	if bad == orig {
		t.Fatalf("makespan field %q not found in encoding", mk)
	}
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Fatal("Decode accepted a tampered makespan")
	}
	got, err := DecodeUnvalidated(strings.NewReader(bad))
	if err != nil {
		t.Fatalf("DecodeUnvalidated rejected the tampered file: %v", err)
	}
	if rep := core.Audit(got); rep.OK() {
		t.Error("audit of the tampered solution found no violations")
	}
	// And an untampered file audits clean.
	got, err = DecodeUnvalidated(strings.NewReader(orig))
	if err != nil {
		t.Fatal(err)
	}
	if rep := core.Audit(got); !rep.OK() {
		t.Errorf("audit of a clean round trip found violations:\n%s", rep)
	}
}

// TestDegradationsRoundTrip: a degraded solution's provenance survives
// serialization, and a clean solution's encoding contains no
// degradations key at all (the byte-identity guarantee the pinned
// fingerprints rely on).
func TestDegradationsRoundTrip(t *testing.T) {
	sol := solve(t, "PCR", false)
	var clean bytes.Buffer
	if err := Encode(&clean, sol); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "degradations") {
		t.Fatal("clean solution encodes a degradations key")
	}
	sol.Degradations = []core.Degradation{
		{Stage: "schedule", Event: "baseline-fallback", Detail: "test"},
		{Stage: "route", Event: "ripup"},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, sol); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Degradations) != 2 ||
		got.Degradations[0] != sol.Degradations[0] ||
		got.Degradations[1] != sol.Degradations[1] {
		t.Fatalf("degradations changed in round trip: %+v", got.Degradations)
	}
}
