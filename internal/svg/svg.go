// Package svg renders synthesis results as standalone SVG documents: the
// chip layout (components, flow channels, ports) and the schedule Gantt
// chart (operations, washes, channel-cache episodes). The output needs no
// external assets and opens in any browser — the vector counterpart of
// the text diagrams in internal/viz.
package svg

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/assay"
	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// typeColor maps operation/component types to fill colors.
func typeColor(t assay.OpType) string {
	switch t {
	case assay.Mix:
		return "#4e79a7"
	case assay.Heat:
		return "#e15759"
	case assay.Filter:
		return "#76b7b2"
	case assay.Detect:
		return "#f28e2b"
	default:
		return "#bab0ac"
	}
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Layout writes the placed-and-routed chip as an SVG document.
func Layout(w io.Writer, sol *core.Solution) error {
	const cell = 14 // pixels per grid cell
	gw, gh := sol.Placement.W, sol.Placement.H
	width, height := gw*cell, gh*cell+30

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fafafa"/>`+"\n", width, height)

	// Grid lines (light).
	for x := 0; x <= gw; x++ {
		fmt.Fprintf(&b, `<line x1="%d" y1="0" x2="%d" y2="%d" stroke="#eee"/>`+"\n", x*cell, x*cell, gh*cell)
	}
	for y := 0; y <= gh; y++ {
		fmt.Fprintf(&b, `<line x1="0" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n", y*cell, gw*cell, y*cell)
	}

	// Flow channels: one rounded square per used cell, plus segment lines
	// along each route.
	seen := map[[2]int]bool{}
	for _, rt := range sol.Routing.Routes {
		for i, c := range rt.Path {
			k := [2]int{c.X, c.Y}
			if !seen[k] {
				seen[k] = true
				fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="3" fill="#c7d9ec"/>`+"\n",
					c.X*cell+2, c.Y*cell+2, cell-4, cell-4)
			}
			if i > 0 {
				p := rt.Path[i-1]
				fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#7da7d9" stroke-width="3" stroke-linecap="round"/>`+"\n",
					p.X*cell+cell/2, p.Y*cell+cell/2, c.X*cell+cell/2, c.Y*cell+cell/2)
			}
		}
	}

	// Components.
	for i, r := range sol.Placement.Rects {
		comp := sol.Comps[i]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="4" fill="%s" stroke="#333"/>`+"\n",
			r.X*cell, r.Y*cell, r.W*cell, r.H*cell, typeColor(comp.Kind.Type))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" fill="#fff" text-anchor="middle">%s</text>`+"\n",
			r.X*cell+r.W*cell/2, r.Y*cell+r.H*cell/2+4, escape(comp.Name()))
	}

	fmt.Fprintf(&b, `<text x="4" y="%d" font-family="sans-serif" font-size="12" fill="#333">%s — %d×%d cells, pitch %v, channel length %v</text>`+"\n",
		gh*cell+20, escape(sol.Assay.Name()), gw, gh, sol.Routing.Pitch, sol.Routing.TotalLength())
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Gantt writes the schedule as an SVG timeline: one lane per component,
// colored blocks for operations, hatched gray for washes, and a bottom
// lane marking channel-cache episodes.
func Gantt(w io.Writer, r *schedule.Result) error {
	const (
		laneH   = 26
		leftPad = 90
		topPad  = 28
		pxPerMs = 0.02 // horizontal scale
	)
	scale := func(t unit.Time) float64 { return leftPad + float64(t)*pxPerMs }
	lanes := len(r.Comps) + 1 // +1 for channel storage
	width := int(scale(r.Makespan)) + 40
	height := topPad + lanes*laneH + 40

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-family="sans-serif" font-size="13" fill="#333">%s — makespan %v, U_r %.1f%%</text>`+"\n",
		leftPad, escape(r.Assay.Name()), r.Makespan, 100*r.Utilization())

	laneY := func(i int) int { return topPad + i*laneH }
	// Lane labels and separators.
	for i, c := range r.Comps {
		fmt.Fprintf(&b, `<text x="4" y="%d" font-family="sans-serif" font-size="11" fill="#333">%s</text>`+"\n",
			laneY(i)+laneH/2+4, escape(c.Name()))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n",
			leftPad, laneY(i), width-10, laneY(i))
	}
	fmt.Fprintf(&b, `<text x="4" y="%d" font-family="sans-serif" font-size="11" fill="#333">channels</text>`+"\n",
		laneY(len(r.Comps))+laneH/2+4)

	// Washes first (underneath).
	for _, ws := range r.Washes {
		x0, x1 := scale(ws.Start), scale(ws.End)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#d0d0d0"/>`+"\n",
			x0, laneY(int(ws.Comp))+4, x1-x0, laneH-8)
	}
	// Operations.
	for _, bo := range r.Ops {
		op := r.Assay.Op(bo.Op)
		x0, x1 := scale(bo.Start), scale(bo.End)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" rx="3" fill="%s"/>`+"\n",
			x0, laneY(int(bo.Comp))+3, x1-x0, laneH-6, typeColor(op.Type))
		if x1-x0 > 30 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" fill="#fff">%s</text>`+"\n",
				x0+3, laneY(int(bo.Comp))+laneH/2+3, escape(op.Name))
		}
	}
	// Channel-cache episodes on the bottom lane.
	for _, ce := range r.Caches {
		x0, x1 := scale(ce.Start), scale(ce.End)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" rx="3" fill="#9467bd" opacity="0.7"/>`+"\n",
			x0, laneY(len(r.Comps))+5, x1-x0, laneH-10)
	}

	// Time axis.
	axisY := laneY(lanes) + 12
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
		leftPad, axisY, scale(r.Makespan), axisY)
	step := unit.Seconds(10)
	for t := unit.Time(0); t <= r.Makespan; t += step {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			scale(t), axisY-3, scale(t), axisY+3)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" fill="#333" text-anchor="middle">%v</text>`+"\n",
			scale(t), axisY+14, t)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
