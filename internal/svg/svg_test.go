package svg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/core"
)

func solve(t *testing.T, name string) *core.Solution {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Place.Imax = 30
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, o)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestLayoutSVGWellFormed(t *testing.T) {
	sol := solve(t, "IVD")
	var buf bytes.Buffer
	if err := Layout(&buf, sol); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	for _, want := range []string{"Mixer1", "Detector1", "IVD", "<rect", "<line"} {
		if !strings.Contains(out, want) {
			t.Errorf("layout SVG missing %q", want)
		}
	}
	// One component rect per component (labels match count).
	if got := strings.Count(out, `text-anchor="middle"`); got < len(sol.Comps) {
		t.Errorf("component labels = %d, want >= %d", got, len(sol.Comps))
	}
}

func TestGanttSVGWellFormed(t *testing.T) {
	sol := solve(t, "PCR")
	var buf bytes.Buffer
	if err := Gantt(&buf, sol.Schedule); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") {
		t.Error("not an SVG document")
	}
	for _, want := range []string{"makespan", "Mixer1", "channels", "mix1"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt SVG missing %q", want)
		}
	}
	// Operation blocks: one rect per op at least.
	if got := strings.Count(out, "rx=\"3\""); got < sol.Assay.NumOps() {
		t.Errorf("op blocks = %d, want >= %d", got, sol.Assay.NumOps())
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

func TestTypeColorsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for ty := 0; ty < 4; ty++ {
		c := typeColor(assay.OpType(ty))
		if seen[c] {
			t.Errorf("duplicate color %s", c)
		}
		seen[c] = true
	}
}
