// Package timing audits the scheduler's constant-transport-time
// assumption against the routed geometry. The paper (Section IV-A)
// schedules with a user-defined constant t_c because channel lengths are
// unknown before routing; after routing, each task's real traversal
// implies a mean flow speed of pathLength / t_c. This package reports the
// distribution of implied speeds and flags tasks whose speed would exceed
// a plausible pressure-driven cap — the timing-closure check of this
// flow.
package timing

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/unit"
)

// DefaultSpeedCap is a generous upper bound on sustainable flow speed in
// pressure-driven PDMS channels, in mm/s.
const DefaultSpeedCap = 50.0

// Report summarises the implied flow speeds of a solution.
type Report struct {
	// Tasks is the number of routed transportation tasks.
	Tasks int
	// Min, Max, Mean and Median implied speeds in mm/s (path length over
	// the movement window).
	Min, Max, Mean, Median float64
	// Cap is the speed limit used; Violations counts tasks above it.
	Cap        float64
	Violations []int // task IDs above the cap, sorted
	// SuggestedTC is the smallest transport constant that would bring
	// every task under the cap at the routed lengths.
	SuggestedTC unit.Time
}

// Closed reports whether every task's implied speed is under the cap —
// i.e. the schedule's t_c is consistent with the routed geometry.
func (r Report) Closed() bool { return len(r.Violations) == 0 }

// Analyze computes the timing report of a solution with the given speed
// cap in mm/s (0 selects DefaultSpeedCap).
func Analyze(sol *core.Solution, cap float64) (Report, error) {
	if sol == nil || sol.Routing == nil {
		return Report{}, fmt.Errorf("timing: nil solution")
	}
	if cap <= 0 {
		cap = DefaultSpeedCap
	}
	rep := Report{Cap: cap}
	tc := sol.Opts.Schedule.TC.Sec()
	if tc <= 0 {
		return Report{}, fmt.Errorf("timing: non-positive t_c")
	}
	pitch := sol.Routing.Pitch.MM()
	var speeds []float64
	var maxLen float64
	for _, rt := range sol.Routing.Routes {
		// A path of n cells spans n pitches of channel (cell-count
		// accounting, consistent with the Table I length metric).
		length := float64(len(rt.Path)) * pitch
		if length > maxLen {
			maxLen = length
		}
		v := length / tc
		speeds = append(speeds, v)
		if v > cap {
			rep.Violations = append(rep.Violations, rt.Task.ID)
		}
	}
	rep.Tasks = len(speeds)
	if len(speeds) == 0 {
		rep.SuggestedTC = sol.Opts.Schedule.TC
		return rep, nil
	}
	sort.Float64s(speeds)
	rep.Min = speeds[0]
	rep.Max = speeds[len(speeds)-1]
	rep.Median = speeds[len(speeds)/2]
	var sum float64
	for _, v := range speeds {
		sum += v
	}
	rep.Mean = sum / float64(len(speeds))
	sort.Ints(rep.Violations)
	rep.SuggestedTC = unit.Seconds(maxLen / cap)
	if rep.SuggestedTC < sol.Opts.Schedule.TC {
		rep.SuggestedTC = sol.Opts.Schedule.TC
	}
	return rep, nil
}
