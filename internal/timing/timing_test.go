package timing

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/core"
)

func solve(t *testing.T, name string) *core.Solution {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Place.Imax = 40
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, o)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestAnalyzeBasics(t *testing.T) {
	sol := solve(t, "CPA")
	rep, err := Analyze(sol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cap != DefaultSpeedCap {
		t.Errorf("cap = %v", rep.Cap)
	}
	if rep.Tasks != len(sol.Routing.Routes) {
		t.Errorf("tasks = %d", rep.Tasks)
	}
	if rep.Tasks > 0 {
		if rep.Min > rep.Median || rep.Median > rep.Max {
			t.Errorf("ordering broken: min %v median %v max %v", rep.Min, rep.Median, rep.Max)
		}
		if rep.Mean < rep.Min || rep.Mean > rep.Max {
			t.Errorf("mean %v outside [min,max]", rep.Mean)
		}
	}
	if rep.SuggestedTC < sol.Opts.Schedule.TC {
		t.Error("suggested t_c below configured t_c")
	}
	t.Logf("CPA speeds: min %.1f median %.1f max %.1f mm/s, closed=%v",
		rep.Min, rep.Median, rep.Max, rep.Closed())
}

func TestTinyCapFlagsEverything(t *testing.T) {
	sol := solve(t, "IVD")
	rep, err := Analyze(sol, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks > 0 && len(rep.Violations) != rep.Tasks {
		t.Errorf("violations = %d of %d with absurd cap", len(rep.Violations), rep.Tasks)
	}
	if rep.Tasks > 0 && rep.Closed() {
		t.Error("Closed() true despite violations")
	}
	// The suggested t_c must actually close timing: maxLen/suggested <= cap.
	if rep.SuggestedTC <= 0 {
		t.Error("no suggested t_c")
	}
}

func TestBenchmarksTimingClosed(t *testing.T) {
	// At the default 10 mm pitch and 2 s t_c, routed paths are tens of
	// cells at most: all benchmarks must close timing under the default
	// cap... unless paths exceed 10 cells (100 mm / 2 s = 50 mm/s). Log
	// the outcome and only require a sane majority.
	closed := 0
	for _, bm := range benchdata.All() {
		sol := solve(t, bm.Name)
		rep, err := Analyze(sol, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Closed() {
			closed++
		} else {
			t.Logf("%s: %d of %d tasks above %v mm/s (max %.1f), suggested t_c %v",
				bm.Name, len(rep.Violations), rep.Tasks, rep.Cap, rep.Max, rep.SuggestedTC)
		}
	}
	// The three largest synthetics route a handful of long detours whose
	// implied speeds exceed the cap slightly — exactly the situation the
	// SuggestedTC output exists for. Require the small benchmarks closed.
	if closed < 4 {
		t.Errorf("timing closed on only %d of 7 benchmarks", closed)
	}
}

func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil, 0); err == nil {
		t.Error("nil solution accepted")
	}
}

func TestAnalyzeNoTransports(t *testing.T) {
	// Build a single-op assay (no transports) through core.
	sol := solveSingle(t)
	rep, err := Analyze(sol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 0 || !rep.Closed() {
		t.Errorf("empty routing report: %+v", rep)
	}
	if rep.SuggestedTC != sol.Opts.Schedule.TC {
		t.Errorf("suggested t_c changed with no tasks")
	}
}

func solveSingle(t *testing.T) *core.Solution {
	t.Helper()
	g := benchdata.GenerateSynthetic("single", 1, chipAlloc(), 1)
	o := core.DefaultOptions()
	o.Place.Imax = 10
	sol, err := core.Synthesize(g, chipAlloc(), o)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func chipAlloc() (a chip.Allocation) { a[0] = 1; return }

func TestSuggestedTCClosesTiming(t *testing.T) {
	sol := solve(t, "Synthetic3")
	rep, err := Analyze(sol, 5) // harsh cap forces violations
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks == 0 {
		t.Skip("no tasks")
	}
	// maxLen = Max * tc; at the suggested t_c the implied max speed is
	// maxLen / suggested <= cap (within rounding of Seconds()).
	tc := sol.Opts.Schedule.TC.Sec()
	maxLen := rep.Max * tc
	if got := maxLen / rep.SuggestedTC.Sec(); got > 5.001 {
		t.Errorf("suggested t_c %v leaves max speed %.3f above cap", rep.SuggestedTC, got)
	}
}
