// Package unit provides the fixed-point physical quantities shared by the
// synthesis pipeline: time in milliseconds, length in micrometres, and
// diffusion coefficients in cm²/s.
//
// The paper reports all times in seconds (often fractional, e.g. 0.2 s wash
// for a lysis buffer) and all lengths in millimetres. Using integer
// milliseconds and micrometres keeps interval arithmetic exact and makes
// every run byte-for-byte reproducible, while converting losslessly to and
// from the units used in the paper.
package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is a duration or an instant on the bioassay clock, in milliseconds.
// The zero Time is the start of the assay.
type Time int64

// Common time constants.
const (
	Millisecond Time = 1
	Second      Time = 1000
	Minute      Time = 60 * Second
)

// Forever is a sentinel instant later than any reachable schedule point.
// It is used as the open end of half-open occupancy intervals.
const Forever Time = math.MaxInt64 / 4

// Seconds constructs a Time from a (possibly fractional) number of seconds,
// rounding to the nearest millisecond and saturating at ±Forever so that
// absurd inputs cannot overflow the fixed-point representation.
func Seconds(s float64) Time {
	ms := math.Round(s * 1000)
	switch {
	case math.IsNaN(ms):
		return 0
	case ms >= float64(Forever):
		return Forever
	case ms <= -float64(Forever):
		return -Forever
	}
	return Time(ms)
}

// Sec reports t as floating-point seconds.
func (t Time) Sec() float64 { return float64(t) / 1000 }

// String formats the time as seconds with millisecond precision, trimming
// trailing zeros: 2 s prints as "2s", 200 ms as "0.2s".
func (t Time) String() string {
	if t == math.MinInt64 {
		// -t would overflow; this value is unreachable through the
		// constructors but Time is an open integer type.
		t++
	}
	neg := t < 0
	if neg {
		t = -t
	}
	whole := t / Second
	frac := t % Second
	var s string
	if frac == 0 {
		s = fmt.Sprintf("%d", whole)
	} else {
		s = strings.TrimRight(fmt.Sprintf("%d.%03d", whole, frac), "0")
	}
	if neg {
		s = "-" + s
	}
	return s + "s"
}

// ParseTime parses strings of the form "2s", "0.2s", "1500ms" or a bare
// number of seconds such as "2.5".
func ParseTime(s string) (Time, error) {
	orig := s
	s = strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(s, "ms"):
		n, err := strconv.ParseInt(strings.TrimSuffix(s, "ms"), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("unit: invalid time %q: %w", orig, err)
		}
		return Time(n), nil
	case strings.HasSuffix(s, "s"):
		s = strings.TrimSuffix(s, "s")
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unit: invalid time %q: %w", orig, err)
	}
	return Seconds(f), nil
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Length is a physical distance in micrometres.
type Length int64

// Common length constants.
const (
	Micrometre Length = 1
	Millimetre Length = 1000
	Centimetre Length = 10 * Millimetre
)

// Millimetres constructs a Length from a fractional number of millimetres.
func Millimetres(mm float64) Length {
	return Length(math.Round(mm * 1000))
}

// MM reports the length as floating-point millimetres.
func (l Length) MM() float64 { return float64(l) / 1000 }

// String formats the length in millimetres, e.g. "420mm" or "10.5mm".
func (l Length) String() string {
	neg := l < 0
	if neg {
		l = -l
	}
	whole := l / Millimetre
	frac := l % Millimetre
	var s string
	if frac == 0 {
		s = fmt.Sprintf("%d", whole)
	} else {
		s = strings.TrimRight(fmt.Sprintf("%d.%03d", whole, frac), "0")
	}
	if neg {
		s = "-" + s
	}
	return s + "mm"
}

// Diffusion is a diffusion coefficient in cm²/s. Lower values correspond to
// larger contaminants and therefore to longer wash times (Section II-B of
// the paper).
type Diffusion float64

// Reference diffusion coefficients from the paper's Section II-B.
const (
	// DiffusionSmallMolecule is typical for small molecules such as a
	// lysis buffer (wash time about 0.2 s).
	DiffusionSmallMolecule Diffusion = 1e-5
	// DiffusionLargeVirus is typical for cells such as tobacco mosaic
	// virus (wash time about 6 s).
	DiffusionLargeVirus Diffusion = 5e-8
)

// Valid reports whether d is a physically meaningful coefficient.
func (d Diffusion) Valid() bool {
	return d > 0 && !math.IsInf(float64(d), 0) && !math.IsNaN(float64(d))
}

// String formats the coefficient in scientific notation, e.g. "1.0e-05 cm²/s".
func (d Diffusion) String() string {
	return fmt.Sprintf("%.1e cm²/s", float64(d))
}
