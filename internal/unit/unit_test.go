package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSecondsRoundTrip(t *testing.T) {
	cases := []struct {
		sec  float64
		want Time
	}{
		{0, 0},
		{0.2, 200},
		{2, 2000},
		{2.5, 2500},
		{37, 37000},
		{0.0004, 0}, // rounds to nearest ms
		{0.0006, 1},
	}
	for _, c := range cases {
		if got := Seconds(c.sec); got != c.want {
			t.Errorf("Seconds(%v) = %d, want %d", c.sec, got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{200, "0.2s"},
		{2000, "2s"},
		{2500, "2.5s"},
		{-1500, "-1.5s"},
		{37 * Second, "37s"},
		{1, "0.001s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in      string
		want    Time
		wantErr bool
	}{
		{"2s", 2000, false},
		{"0.2s", 200, false},
		{"1500ms", 1500, false},
		{"2.5", 2500, false},
		{" 3s ", 3000, false},
		{"", 0, true},
		{"xs", 0, true},
		{"1.5ms", 0, true}, // ms must be integral
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTime(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseTime(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseTimeRoundTripsString(t *testing.T) {
	f := func(ms int32) bool {
		tm := Time(ms)
		got, err := ParseTime(tm.String())
		return err == nil && got == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMinTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime wrong")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime wrong")
	}
	if MaxTime(5, 5) != 5 || MinTime(5, 5) != 5 {
		t.Error("Max/MinTime not idempotent on equal args")
	}
}

func TestForeverOrdering(t *testing.T) {
	if Forever <= 1000*Minute {
		t.Error("Forever must exceed any practical schedule instant")
	}
	// Forever must be safely addable without overflow.
	if Forever+Forever < Forever {
		t.Error("Forever+Forever overflows")
	}
}

func TestMillimetres(t *testing.T) {
	if Millimetres(10.5) != 10500 {
		t.Errorf("Millimetres(10.5) = %d", Millimetres(10.5))
	}
	if got := Length(420 * Millimetre).MM(); got != 420 {
		t.Errorf("MM() = %v", got)
	}
}

func TestLengthString(t *testing.T) {
	cases := []struct {
		l    Length
		want string
	}{
		{0, "0mm"},
		{420 * Millimetre, "420mm"},
		{10500, "10.5mm"},
		{-1500, "-1.5mm"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("Length(%d).String() = %q, want %q", c.l, got, c.want)
		}
	}
}

func TestDiffusionValid(t *testing.T) {
	if !DiffusionSmallMolecule.Valid() || !DiffusionLargeVirus.Valid() {
		t.Error("reference coefficients must be valid")
	}
	for _, d := range []Diffusion{0, -1e-5, Diffusion(math.NaN()), Diffusion(math.Inf(1))} {
		if d.Valid() {
			t.Errorf("Diffusion(%v).Valid() = true, want false", float64(d))
		}
	}
}

func TestDiffusionString(t *testing.T) {
	if got := DiffusionSmallMolecule.String(); got != "1.0e-05 cm²/s" {
		t.Errorf("String() = %q", got)
	}
}

func TestSecRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		tm := Time(ms)
		return Seconds(tm.Sec()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func FuzzParseTime(f *testing.F) {
	for _, seed := range []string{"2s", "0.2s", "1500ms", "2.5", "", "xs", "-3.1s", "9999999999999s"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseTime(s)
		if err != nil {
			return
		}
		// Whatever parses must survive a format/parse round trip.
		w, err := ParseTime(v.String())
		if err != nil {
			t.Fatalf("ParseTime(%q) = %v, but its String %q does not parse: %v", s, v, v.String(), err)
		}
		if w != v {
			t.Fatalf("round trip changed value: %v -> %v", v, w)
		}
	})
}
