package valve

import (
	"sort"

	"repro/internal/core"
	"repro/internal/route"
)

// PinPlan is a control-pin assignment for the chip's channel valves.
// Valves whose actuation sequences are identical across the whole
// schedule can share a single control pin (their pneumatic lines are
// tied together) — the basic control-layer multiplexing technique whose
// switching cost [13] optimizes. Channel sharing in the flow layer
// directly reduces the number of distinct actuation patterns and hence
// the pin count.
type PinPlan struct {
	// Valves is the number of channel valves (one per used cell).
	Valves int
	// Pins is the number of control pins after pattern sharing.
	Pins int
	// PinSwitches is the total number of pin transitions over the
	// actuation sequence (including the final closing).
	PinSwitches int
	// Sharing is Valves/Pins (1.0 = no sharing possible).
	Sharing float64
}

// PlanPins computes a pattern-sharing control-pin plan for a solution.
func PlanPins(sol *core.Solution) PinPlan {
	return planPins(sol.Routing.Routes)
}

func planPins(routes []route.RoutedTask) PinPlan {
	if len(routes) == 0 {
		return PinPlan{Sharing: 1}
	}
	// Deterministic step order: window start, then task ID.
	order := make([]int, len(routes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := routes[order[a]].Task.Window.Start, routes[order[b]].Task.Window.Start
		if wa != wb {
			return wa < wb
		}
		return routes[order[a]].Task.ID < routes[order[b]].Task.ID
	})
	// Actuation pattern per valve: one bit per step.
	patterns := map[route.Cell][]bool{}
	for step, oi := range order {
		for _, c := range routes[oi].Path {
			if patterns[c] == nil {
				patterns[c] = make([]bool, len(order))
			}
			patterns[c][step] = true
		}
		_ = step
	}
	// Group valves by identical pattern.
	groups := map[string]int{}
	for _, pat := range patterns {
		key := make([]byte, len(pat))
		for i, b := range pat {
			if b {
				key[i] = '1'
			} else {
				key[i] = '0'
			}
		}
		groups[string(key)]++
	}
	plan := PinPlan{Valves: len(patterns), Pins: len(groups)}
	// Pin switching: transitions of each distinct pattern, from the
	// all-closed initial state and back to closed at the end.
	for key := range groups {
		prev := byte('0')
		for i := 0; i < len(key); i++ {
			if key[i] != prev {
				plan.PinSwitches++
				prev = key[i]
			}
		}
		if prev == '1' {
			plan.PinSwitches++ // close at the end
		}
	}
	if plan.Pins > 0 {
		plan.Sharing = float64(plan.Valves) / float64(plan.Pins)
	} else {
		plan.Sharing = 1
	}
	return plan
}
