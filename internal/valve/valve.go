// Package valve analyzes the control-layer complexity implied by a
// routed flow-layer solution — the optimization direction named in the
// paper's conclusion (future work, citing Wang et al., ASP-DAC'17, who
// minimize control-layer multiplexing cost via Hamming distances between
// valve-state vectors).
//
// The model: every grid cell that carries a flow channel is gated by one
// control valve, and every component contributes two isolation valves
// (inlet and outlet). Executing a transportation task actuates the valves
// along its path (open) while all other channel valves stay closed. The
// control sequencer therefore walks through one valve-state vector per
// task, in task start order; its cost is the total Hamming distance
// between consecutive vectors — exactly the quantity [13] minimizes.
// Tasks that start simultaneously may be issued in any order, so the
// analysis also reports the switching cost after a greedy nearest-
// neighbour reordering inside each equal-start group.
package valve

import (
	"sort"

	"repro/internal/core"
	"repro/internal/route"
)

// Analysis summarises the control layer of one solution.
type Analysis struct {
	// NumValves is the number of control valves: one per channel cell
	// plus two isolation valves per component.
	NumValves int
	// Steps is the number of actuation steps (one per transportation
	// task).
	Steps int
	// Switches is the total Hamming distance between consecutive
	// valve-state vectors in schedule order.
	Switches int
	// OptimizedSwitches is the same cost after reordering simultaneous
	// tasks to minimise successive Hamming distance (greedy nearest
	// neighbour inside each equal-start group).
	OptimizedSwitches int
}

// Analyze computes the control-layer metrics of a synthesized solution.
func Analyze(sol *core.Solution) Analysis {
	routes := sol.Routing.Routes
	a := Analysis{
		NumValves: sol.Routing.UnionCells + 2*len(sol.Comps),
		Steps:     len(routes),
	}
	if len(routes) == 0 {
		return a
	}
	sets := make([]map[route.Cell]bool, len(routes))
	starts := make([]int64, len(routes))
	order := make([]int, len(routes))
	for i, rt := range routes {
		s := make(map[route.Cell]bool, len(rt.Path))
		for _, c := range rt.Path {
			s[c] = true
		}
		sets[i] = s
		starts[i] = int64(rt.Task.Window.Start)
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if starts[order[i]] != starts[order[j]] {
			return starts[order[i]] < starts[order[j]]
		}
		return routes[order[i]].Task.ID < routes[order[j]].Task.ID
	})
	a.Switches = totalSwitching(sets, order)
	a.OptimizedSwitches = totalSwitching(sets, optimizeGroups(sets, starts, order))
	return a
}

// hamming returns |a Δ b|, the number of valves that change state between
// two actuation vectors.
func hamming(a, b map[route.Cell]bool) int {
	d := 0
	for c := range a {
		if !b[c] {
			d++
		}
	}
	for c := range b {
		if !a[c] {
			d++
		}
	}
	return d
}

// totalSwitching sums Hamming distances along the given order, including
// the initial all-closed state and the final closing of the last task.
func totalSwitching(sets []map[route.Cell]bool, order []int) int {
	total := 0
	prev := map[route.Cell]bool{}
	for _, i := range order {
		total += hamming(prev, sets[i])
		prev = sets[i]
	}
	total += len(prev) // close everything at the end
	return total
}

// optimizeGroups reorders tasks inside each equal-start group by greedy
// nearest-neighbour Hamming distance, preserving inter-group order — a
// lightweight instance of the Hamming-distance-based control optimization
// of [13].
func optimizeGroups(sets []map[route.Cell]bool, starts []int64, order []int) []int {
	out := make([]int, 0, len(order))
	prev := map[route.Cell]bool{}
	for g := 0; g < len(order); {
		h := g
		for h < len(order) && starts[order[h]] == starts[order[g]] {
			h++
		}
		group := append([]int(nil), order[g:h]...)
		for len(group) > 0 {
			best, bestD := 0, -1
			for k, idx := range group {
				if d := hamming(prev, sets[idx]); bestD < 0 || d < bestD ||
					(d == bestD && idx < group[best]) {
					best, bestD = k, d
				}
			}
			idx := group[best]
			group = append(group[:best], group[best+1:]...)
			out = append(out, idx)
			prev = sets[idx]
		}
		g = h
	}
	return out
}
