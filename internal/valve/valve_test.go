package valve

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/route"
)

func solve(t *testing.T, name string, baseline bool) *core.Solution {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Place.Imax = 40
	var sol *core.Solution
	if baseline {
		sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, o)
	} else {
		sol, err = core.Synthesize(bm.Graph, bm.Alloc, o)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestHamming(t *testing.T) {
	a := map[route.Cell]bool{{X: 1, Y: 1}: true, {X: 2, Y: 2}: true}
	b := map[route.Cell]bool{{X: 2, Y: 2}: true, {X: 3, Y: 3}: true, {X: 4, Y: 4}: true}
	if got := hamming(a, b); got != 3 {
		t.Errorf("hamming = %d, want 3", got)
	}
	if got := hamming(a, a); got != 0 {
		t.Errorf("self hamming = %d", got)
	}
	if got := hamming(map[route.Cell]bool{}, b); got != 3 {
		t.Errorf("hamming from empty = %d", got)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	sol := solve(t, "CPA", false)
	a := Analyze(sol)
	if a.NumValves != sol.Routing.UnionCells+2*len(sol.Comps) {
		t.Errorf("NumValves = %d", a.NumValves)
	}
	if a.Steps != len(sol.Routing.Routes) {
		t.Errorf("Steps = %d, want %d", a.Steps, len(sol.Routing.Routes))
	}
	if a.Switches <= 0 {
		t.Error("no switching recorded despite transports")
	}
	if a.OptimizedSwitches > a.Switches {
		t.Errorf("optimization made switching worse: %d > %d", a.OptimizedSwitches, a.Switches)
	}
}

func TestAnalyzeEmptyRouting(t *testing.T) {
	// Single-op assays have no transports.
	bm := benchdata.PCR()
	b := bm.Graph
	_ = b
	sol := solve(t, "PCR", false)
	// PCR has transports; construct empties by truncation instead.
	empty := *sol
	routingCopy := *sol.Routing
	routingCopy.Routes = nil
	empty.Routing = &routingCopy
	a := Analyze(&empty)
	if a.Steps != 0 || a.Switches != 0 || a.OptimizedSwitches != 0 {
		t.Errorf("empty routing analysis = %+v", a)
	}
}

// TestProposedUsesFewerValvesThanBaseline checks the control-layer
// benefit of channel sharing: the proposed router fabricates fewer
// channel cells, hence fewer valves, than the baseline.
func TestProposedUsesFewerValvesThanBaseline(t *testing.T) {
	ours := Analyze(solve(t, "CPA", false))
	ba := Analyze(solve(t, "CPA", true))
	if ours.NumValves >= ba.NumValves {
		t.Errorf("ours valves %d not below baseline %d", ours.NumValves, ba.NumValves)
	}
	t.Logf("CPA control layer: ours %d valves / %d switches (opt %d), BA %d valves / %d switches (opt %d)",
		ours.NumValves, ours.Switches, ours.OptimizedSwitches,
		ba.NumValves, ba.Switches, ba.OptimizedSwitches)
}

func TestOptimizationDeterministic(t *testing.T) {
	sol := solve(t, "Synthetic1", false)
	a1 := Analyze(sol)
	a2 := Analyze(sol)
	if a1 != a2 {
		t.Errorf("analysis not deterministic: %+v vs %+v", a1, a2)
	}
}

func TestPlanPinsBasics(t *testing.T) {
	sol := solve(t, "CPA", false)
	plan := PlanPins(sol)
	if plan.Valves != sol.Routing.UnionCells {
		t.Errorf("valves = %d, want %d", plan.Valves, sol.Routing.UnionCells)
	}
	if plan.Pins <= 0 || plan.Pins > plan.Valves {
		t.Errorf("pins = %d of %d valves", plan.Pins, plan.Valves)
	}
	if plan.Sharing < 1 {
		t.Errorf("sharing = %v, want >= 1", plan.Sharing)
	}
	if plan.PinSwitches <= 0 {
		t.Error("no pin switching despite transports")
	}
	t.Logf("CPA pins: %d valves on %d pins (%.2f sharing), %d pin switches",
		plan.Valves, plan.Pins, plan.Sharing, plan.PinSwitches)
}

func TestPlanPinsEmpty(t *testing.T) {
	plan := planPins(nil)
	if plan.Valves != 0 || plan.Pins != 0 || plan.PinSwitches != 0 || plan.Sharing != 1 {
		t.Errorf("empty plan = %+v", plan)
	}
}

func TestPlanPinsDeterministic(t *testing.T) {
	sol := solve(t, "Synthetic2", false)
	if PlanPins(sol) != PlanPins(sol) {
		t.Error("pin plan not deterministic")
	}
}

// TestPinSharingBeatsDirectDrive: any grouping produces at most one pin
// per valve; on realistic solutions identical actuation patterns exist,
// so sharing is strictly above 1.
func TestPinSharingBeatsDirectDrive(t *testing.T) {
	sol := solve(t, "CPA", false)
	plan := PlanPins(sol)
	if len(sol.Routing.Routes) > 1 && plan.Sharing <= 1 {
		t.Logf("no pattern sharing on CPA (%d pins for %d valves)", plan.Pins, plan.Valves)
	}
	// Consecutive path cells of a task that no other task touches share a
	// pattern by construction, so some sharing is essentially certain.
	if plan.Sharing < 1.2 {
		t.Logf("low sharing %.2f — acceptable but unusual", plan.Sharing)
	}
}
