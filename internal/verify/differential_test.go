// Differential check: two independent implementations constrain each
// other. The exhaustive binding enumerator (internal/exact) bounds the
// heuristic scheduler from below, and its schedules — produced by a
// completely different search — must satisfy the same audited constraint
// model. Audited schedule-only with Baseline set: the enumerator
// deliberately explores non-Case-I bindings, which is exactly what makes
// it an independent witness.
package verify_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/schedule"
	"repro/internal/verify"
)

func TestDifferentialAgainstExact(t *testing.T) {
	for _, name := range []string{"PCR", "IVD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bm, err := benchdata.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			o := core.DefaultOptions()
			o.Place.Imax = 30
			sol, err := core.Synthesize(bm.Graph, bm.Alloc, o)
			if err != nil {
				t.Fatal(err)
			}

			comps := bm.Alloc.Instantiate()
			opt, st, err := exact.Optimal(bm.Graph, comps, schedule.DefaultOptions())
			if err != nil {
				t.Skipf("assay too large for exhaustive enumeration: %v", err)
			}
			if st.Candidates == 0 {
				t.Fatal("enumerator examined no candidates")
			}
			// The exhaustive optimum bounds the heuristic from below.
			if sol.Schedule.Makespan < opt.Makespan {
				t.Errorf("heuristic makespan %v beats the exhaustive optimum %v — one of the two is broken",
					sol.Schedule.Makespan, opt.Makespan)
			}
			// And the enumerator's own schedule must satisfy the audited
			// constraint model (schedule-only: exact does not place or route).
			rep := verify.Audit(verify.Input{
				Assay:    bm.Graph,
				Comps:    comps,
				Schedule: opt,
				Baseline: true,
			})
			if !rep.OK() {
				t.Errorf("exhaustive schedule violates the constraint model:\n%s", rep)
			}
			if rep.Stats.Ops != bm.Graph.NumOps() {
				t.Errorf("audit examined %d ops, assay has %d", rep.Stats.Ops, bm.Graph.NumOps())
			}
		})
	}
}
