package verify

import (
	"sort"

	"repro/internal/interval"
	"repro/internal/place"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// checkPlacement audits the component footprints on the routing plane:
// one rectangle per component, sized like the component (possibly
// rotated), inside the plane and pairwise disjoint. Spacing margins are a
// placer-quality concern, not a legality constraint — dilation legally
// rescales them — so only structural overlap is a violation.
func (a *auditor) checkPlacement() {
	pl, rep := a.in.Placement, a.rep
	rep.Stats.Rects = len(pl.Rects)
	if pl.W <= 0 || pl.H <= 0 {
		rep.add(Placement, "plane", "placement plane %dx%d is empty", pl.W, pl.H)
		return
	}
	if len(pl.Rects) != len(a.in.Comps) {
		rep.add(Placement, "rect-count", "%d rectangles for %d components", len(pl.Rects), len(a.in.Comps))
		return
	}
	for i, r := range pl.Rects {
		if r.W <= 0 || r.H <= 0 {
			rep.add(Placement, "footprint-empty", "component %d has empty footprint %+v", i, r)
			continue
		}
		fp := a.in.Comps[i].Kind.Footprint
		if !(r.W == fp.W && r.H == fp.H) && !(r.W == fp.H && r.H == fp.W) {
			rep.add(Placement, "footprint-size", "component %s placed as %dx%d, library footprint is %dx%d",
				a.in.Comps[i].Name(), r.W, r.H, fp.W, fp.H)
		}
		if r.X < 0 || r.Y < 0 || r.X+r.W > pl.W || r.Y+r.H > pl.H {
			rep.add(Placement, "bounds", "component %d at %+v leaves the %dx%d plane", i, r, pl.W, pl.H)
		}
		for j := i + 1; j < len(pl.Rects); j++ {
			o := pl.Rects[j]
			if r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H {
				rep.add(Placement, "overlap", "components %d and %d overlap: %+v vs %+v", i, j, r, o)
			}
		}
	}
}

// cellSlot is one independently re-derived occupancy entry of a grid cell.
type cellSlot struct {
	iv    interval.Interval
	fluid string
	wash  unit.Time
	task  int
}

// geometry is the auditor's own routing-plane model, rebuilt from the
// placement alone: blocked component interiors and the port rings (the
// free boundary cells at distance one and two of each footprint).
type geometry struct {
	w, h    int
	blocked []bool
	rings   []map[[2]int]bool // per component
}

func (ge *geometry) in(x, y int) bool { return x >= 0 && x < ge.w && y >= 0 && y < ge.h }

func (ge *geometry) isBlocked(x, y int) bool { return ge.blocked[y*ge.w+x] }

// buildGeometry derives the plane model from the placement.
func buildGeometry(pl *place.Placement) *geometry {
	ge := &geometry{w: pl.W, h: pl.H, blocked: make([]bool, pl.W*pl.H), rings: make([]map[[2]int]bool, len(pl.Rects))}
	for _, r := range pl.Rects {
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				if ge.in(x, y) {
					ge.blocked[y*ge.w+x] = true
				}
			}
		}
	}
	for c, r := range pl.Rects {
		ring := map[[2]int]bool{}
		for _, rr := range []place.Rect{r, {X: r.X - 1, Y: r.Y - 1, W: r.W + 2, H: r.H + 2}} {
			for x := rr.X; x < rr.X+rr.W; x++ {
				ring[[2]int{x, rr.Y - 1}] = true
				ring[[2]int{x, rr.Y + rr.H}] = true
			}
			for y := rr.Y; y < rr.Y+rr.H; y++ {
				ring[[2]int{rr.X - 1, y}] = true
				ring[[2]int{rr.X + rr.W, y}] = true
			}
		}
		free := map[[2]int]bool{}
		for c2 := range ring {
			if ge.in(c2[0], c2[1]) && !ge.isBlocked(c2[0], c2[1]) {
				free[c2] = true
			}
		}
		ge.rings[c] = free
	}
	return ge
}

// taskWindows returns the movement window of a transport and the extended
// hold window its first path cell carries when the fluid parked in channel
// storage next to its source (Section IV-B-2).
func taskWindows(tr *schedule.Transport) (move, hold interval.Interval) {
	move = interval.Make(tr.Depart, tr.Arrive)
	hold = move
	if tr.FromChannel {
		hold = interval.Make(tr.CacheStart, tr.Arrive)
	}
	return move, hold
}

// checkRouting audits every transportation task's committed path against
// the plane geometry and the time-slot condition of Eq. 5, then re-sums
// the reported aggregates (union channel length, total channel wash time)
// from the raw paths.
func (a *auditor) checkRouting() {
	res, s, rep := a.in.Routing, a.in.Schedule, a.rep
	rep.Stats.Routes = len(res.Routes)
	if res.GridW != a.in.Placement.W || res.GridH != a.in.Placement.H {
		rep.add(Routing, "grid-dims", "routing grid %dx%d, placement plane %dx%d",
			res.GridW, res.GridH, a.in.Placement.W, a.in.Placement.H)
	}
	ge := buildGeometry(a.in.Placement)

	trByID := make(map[int]*schedule.Transport, len(s.Transports))
	for i := range s.Transports {
		trByID[s.Transports[i].ID] = &s.Transports[i]
	}
	routed := map[int]bool{}

	// slots holds the re-derived occupancy calendar: cell index → entries,
	// appended in route order exactly as the router commits them.
	slots := make(map[int][]cellSlot)
	union := map[[2]int]bool{}

	for _, rt := range res.Routes {
		tr := trByID[rt.Task.ID]
		if tr == nil {
			rep.add(Routing, "route-unknown", "route for task %d, which is no transport of the schedule", rt.Task.ID)
			continue
		}
		if routed[tr.ID] {
			rep.add(Routing, "route-duplicate", "task %d routed more than once", tr.ID)
			continue
		}
		routed[tr.ID] = true
		if len(rt.Path) == 0 {
			rep.add(Routing, "path-empty", "task %d (%d->%d) has no path", tr.ID, tr.From, tr.To)
			continue
		}
		first, last := rt.Path[0], rt.Path[len(rt.Path)-1]
		if !ge.rings[tr.From][[2]int{first.X, first.Y}] {
			rep.add(Routing, "endpoint-src", "task %d starts at (%d,%d), not a port of component %d",
				tr.ID, first.X, first.Y, tr.From)
		}
		if !ge.rings[tr.To][[2]int{last.X, last.Y}] {
			rep.add(Routing, "endpoint-dst", "task %d ends at (%d,%d), not a port of component %d",
				tr.ID, last.X, last.Y, tr.To)
		}
		pathOK := true
		for i, c := range rt.Path {
			if !ge.in(c.X, c.Y) {
				rep.add(Routing, "path-bounds", "task %d path cell (%d,%d) leaves the plane", tr.ID, c.X, c.Y)
				pathOK = false
				continue
			}
			if ge.isBlocked(c.X, c.Y) {
				rep.add(Routing, "path-blocked", "task %d path crosses component interior at (%d,%d)", tr.ID, c.X, c.Y)
				pathOK = false
			}
			if i > 0 {
				dx, dy := c.X-rt.Path[i-1].X, c.Y-rt.Path[i-1].Y
				if dx*dx+dy*dy != 1 {
					rep.add(Routing, "path-connectivity", "task %d path jumps from (%d,%d) to (%d,%d)",
						tr.ID, rt.Path[i-1].X, rt.Path[i-1].Y, c.X, c.Y)
					pathOK = false
				}
			}
		}
		if !pathOK {
			continue
		}
		move, hold := taskWindows(tr)
		for i, c := range rt.Path {
			iv := move
			if i == 0 {
				iv = hold
			}
			idx := c.Y*ge.w + c.X
			slots[idx] = append(slots[idx], cellSlot{iv: iv, fluid: tr.Fluid.Name, wash: tr.WashTime, task: tr.ID})
			union[[2]int{c.X, c.Y}] = true
		}
	}
	for id := range trByID {
		if !routed[id] {
			rep.add(Routing, "route-missing", "transport %d was never routed", id)
		}
	}

	// Eq. 5: no two tasks of different fluids may hold one cell in
	// intersecting time slots. Aliquots of the same sample share freely.
	cellIdxs := make([]int, 0, len(slots))
	for idx := range slots {
		cellIdxs = append(cellIdxs, idx)
	}
	sort.Ints(cellIdxs)
	nSlots := 0
	for _, idx := range cellIdxs {
		ss := slots[idx]
		nSlots += len(ss)
		for i := 0; i < len(ss); i++ {
			for j := i + 1; j < len(ss); j++ {
				if ss[i].fluid != ss[j].fluid && ss[i].iv.Overlaps(ss[j].iv) {
					rep.add(Slot, "slot-conflict", "tasks %d (%s, %v) and %d (%s, %v) share cell (%d,%d) in intersecting slots",
						ss[i].task, ss[i].fluid, ss[i].iv, ss[j].task, ss[j].fluid, ss[j].iv,
						idx%ge.w, idx/ge.w)
				}
			}
		}
	}
	rep.Stats.Cells = len(slots)
	rep.Stats.Slots = nSlots

	// Re-sum the reported aggregates. Union channel length counts each
	// distinct cell once (shared segments are fabricated once); channel
	// wash time charges one wash per slot except when the next fluid
	// through the cell is the same sample, whose residue does not
	// contaminate it (the accounting of Fig. 9).
	if res.UnionCells != len(union) {
		rep.add(Metric, "union-cells", "reported %d union channel cells, paths cover %d", res.UnionCells, len(union))
	}
	var wash unit.Time
	for _, idx := range cellIdxs {
		ss := append([]cellSlot(nil), slots[idx]...)
		sort.Slice(ss, func(x, y int) bool { return ss[x].iv.Start < ss[y].iv.Start })
		for k := 0; k < len(ss); k++ {
			if k+1 < len(ss) && ss[k+1].fluid == ss[k].fluid {
				continue
			}
			wash += ss[k].wash
		}
	}
	if res.ChannelWash != wash {
		rep.add(Metric, "wash-sum", "reported channel wash time %v, slot calendar re-sums to %v", res.ChannelWash, wash)
	}
}
