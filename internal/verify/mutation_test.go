// Mutation-kill test: the auditor's reason to exist is catching invalid
// solutions, so we measure that directly. Known-good synthesized
// solutions are corrupted by a systematic catalogue of single-site
// mutants — shifted operations, dropped or shortened washes, dropped,
// duplicated or hastened transports, kinked, truncated or emptied routes,
// displaced placements, corrupted aggregates — and the auditor must kill
// (report at least one violation for) at least 95% of them. The few
// legitimate survivors are mutants that happen to produce a different but
// still-valid solution (e.g. truncating a route onto the outer port ring
// of its destination), which a constraint auditor must NOT reject.
package verify_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/solio"
)

// mutant is one deterministic single-site corruption.
type mutant struct {
	name string
	// apply corrupts the solution; it reports false when the site
	// vanished (defensive — sites are enumerated from the same solution).
	apply func(*core.Solution) bool
}

// catalogue enumerates every mutation site of the solution.
func catalogue(sol *core.Solution) []mutant {
	var ms []mutant
	add := func(name string, f func(*core.Solution) bool) {
		ms = append(ms, mutant{name: name, apply: f})
	}
	for i := range sol.Schedule.Ops {
		i := i
		// The engine schedules as soon as ready, so hastening an operation
		// always lands it before an arrival, a wash completion or the
		// previous binding's end. (Delaying instead can produce a
		// different but still-valid solution when the op has slack — an
		// equivalent mutant the auditor must accept, so it is not used.)
		add(fmt.Sprintf("op-shift-%d", i), func(s *core.Solution) bool {
			s.Schedule.Ops[i].Start--
			s.Schedule.Ops[i].End--
			return true
		})
		add(fmt.Sprintf("op-stretch-%d", i), func(s *core.Solution) bool {
			s.Schedule.Ops[i].End++
			return true
		})
		if sol.Schedule.Ops[i].InPlace {
			add(fmt.Sprintf("inplace-drop-%d", i), func(s *core.Solution) bool {
				s.Schedule.Ops[i].InPlace = false
				return true
			})
		}
	}
	// Swap the time slots of consecutive bindings on one component.
	for i := range sol.Schedule.Ops {
		for j := i + 1; j < len(sol.Schedule.Ops); j++ {
			if sol.Schedule.Ops[i].Comp != sol.Schedule.Ops[j].Comp {
				continue
			}
			i, j := i, j
			add(fmt.Sprintf("op-swap-%d-%d", i, j), func(s *core.Solution) bool {
				a, b := &s.Schedule.Ops[i], &s.Schedule.Ops[j]
				a.Start, b.Start = b.Start, a.Start
				a.End, b.End = b.End, a.End
				return true
			})
			break // one swap partner per op keeps the catalogue linear
		}
	}
	for i := range sol.Schedule.Washes {
		i := i
		add(fmt.Sprintf("wash-drop-%d", i), func(s *core.Solution) bool {
			s.Schedule.Washes = append(s.Schedule.Washes[:i:i], s.Schedule.Washes[i+1:]...)
			return true
		})
		add(fmt.Sprintf("wash-shorten-%d", i), func(s *core.Solution) bool {
			s.Schedule.Washes[i].End--
			return true
		})
		add(fmt.Sprintf("wash-move-%d", i), func(s *core.Solution) bool {
			s.Schedule.Washes[i].Start--
			s.Schedule.Washes[i].End--
			return true
		})
	}
	for i := range sol.Schedule.Transports {
		i := i
		add(fmt.Sprintf("tr-drop-%d", i), func(s *core.Solution) bool {
			s.Schedule.Transports = append(s.Schedule.Transports[:i:i], s.Schedule.Transports[i+1:]...)
			return true
		})
		add(fmt.Sprintf("tr-dup-%d", i), func(s *core.Solution) bool {
			s.Schedule.Transports = append(s.Schedule.Transports, s.Schedule.Transports[i])
			return true
		})
		add(fmt.Sprintf("tr-early-%d", i), func(s *core.Solution) bool {
			s.Schedule.Transports[i].Depart--
			return true
		})
		add(fmt.Sprintf("tr-wash-%d", i), func(s *core.Solution) bool {
			s.Schedule.Transports[i].WashTime++
			return true
		})
	}
	for i := range sol.Schedule.Caches {
		i := i
		add(fmt.Sprintf("cache-drop-%d", i), func(s *core.Solution) bool {
			s.Schedule.Caches = append(s.Schedule.Caches[:i:i], s.Schedule.Caches[i+1:]...)
			return true
		})
		add(fmt.Sprintf("cache-shift-%d", i), func(s *core.Solution) bool {
			s.Schedule.Caches[i].Start--
			return true
		})
	}
	for i := range sol.Routing.Routes {
		i := i
		add(fmt.Sprintf("route-empty-%d", i), func(s *core.Solution) bool {
			s.Routing.Routes[i].Path = nil
			return true
		})
		add(fmt.Sprintf("route-trunc-%d", i), func(s *core.Solution) bool {
			p := s.Routing.Routes[i].Path
			if len(p) == 0 {
				return false
			}
			s.Routing.Routes[i].Path = p[:len(p)-1]
			return true
		})
		add(fmt.Sprintf("route-kink-%d", i), func(s *core.Solution) bool {
			p := s.Routing.Routes[i].Path
			if len(p) < 3 {
				return false
			}
			p[len(p)/2].X++
			return true
		})
	}
	for i := range sol.Placement.Rects {
		i := i
		add(fmt.Sprintf("rect-oob-%d", i), func(s *core.Solution) bool {
			s.Placement.Rects[i].X += s.Placement.W
			return true
		})
		if i > 0 {
			add(fmt.Sprintf("rect-overlap-%d", i), func(s *core.Solution) bool {
				s.Placement.Rects[i].X = s.Placement.Rects[0].X
				s.Placement.Rects[i].Y = s.Placement.Rects[0].Y
				return true
			})
		}
	}
	add("makespan-bump", func(s *core.Solution) bool {
		s.Schedule.Makespan++
		return true
	})
	add("union-cells-bump", func(s *core.Solution) bool {
		s.Routing.UnionCells++
		return true
	})
	add("channel-wash-bump", func(s *core.Solution) bool {
		s.Routing.ChannelWash++
		return true
	})
	return ms
}

// freshCopy deep-copies the solution through the serialization round trip
// (without re-validating, since the copy is about to be corrupted).
func freshCopy(t *testing.T, encoded []byte) *core.Solution {
	t.Helper()
	sol, err := solio.DecodeUnvalidated(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestMutationKillRate(t *testing.T) {
	for _, run := range []struct {
		bench    string
		baseline bool
	}{
		{"PCR", false},
		{"PCR", true},
		{"IVD", false},
	} {
		run := run
		algo := "ours"
		if run.baseline {
			algo = "BA"
		}
		t.Run(run.bench+"/"+algo, func(t *testing.T) {
			t.Parallel()
			bm, err := benchdata.ByName(run.bench)
			if err != nil {
				t.Fatal(err)
			}
			o := core.DefaultOptions()
			o.Place.Imax = 30
			var sol *core.Solution
			if run.baseline {
				sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, o)
			} else {
				sol, err = core.Synthesize(bm.Graph, bm.Alloc, o)
			}
			if err != nil {
				t.Fatal(err)
			}
			if rep := core.Audit(sol); !rep.OK() {
				t.Fatalf("baseline-of-truth solution is not clean:\n%s", rep)
			}
			var buf bytes.Buffer
			if err := solio.Encode(&buf, sol); err != nil {
				t.Fatal(err)
			}
			encoded := buf.Bytes()

			muts := catalogue(sol)
			if len(muts) < 30 {
				t.Fatalf("only %d mutants enumerated — the catalogue lost sites", len(muts))
			}
			killed, applied := 0, 0
			var survivors []string
			for _, m := range muts {
				cp := freshCopy(t, encoded)
				if !m.apply(cp) {
					continue
				}
				applied++
				if rep := core.Audit(cp); !rep.OK() {
					killed++
				} else {
					survivors = append(survivors, m.name)
				}
			}
			rate := float64(killed) / float64(applied)
			t.Logf("%d/%d mutants killed (%.1f%%), survivors: %v",
				killed, applied, 100*rate, survivors)
			if rate < 0.95 {
				t.Errorf("kill rate %.1f%% below the 95%% guarantee; survivors: %v",
					100*rate, survivors)
			}
		})
	}
}
