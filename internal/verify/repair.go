package verify

import (
	"reflect"

	"repro/internal/assay"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// Repair is the violation class for incremental-repair contract breaches:
// an executed-prefix row drifted, new work landed before the cut or on a
// failed component, a frozen route changed, or a re-planned path crosses
// a reported dead cell.
const Repair Class = "repair"

// RepairSpec is the contract a mid-assay repair must honour, expressed
// against the pre-repair solution. All fields describe the fault report
// and the previous solution — never the repairer's internals — so the
// audit re-derives the prefix-freeze invariant from scratch.
type RepairSpec struct {
	// At is the execution cut: the instant the fault report took effect.
	At unit.Time
	// Banned is indexed by component ID; true marks components reported
	// failed. Nil means no component failed.
	Banned []bool
	// Defects are the plane cells reported dead. Frozen paths may cross
	// them (the fluid passed before the fault); re-planned paths may not.
	Defects []route.Cell
	// PrevSchedule and PrevRouting are the solution being repaired.
	PrevSchedule *schedule.Result
	PrevRouting  *route.Result
	// PlacementFrozen asserts the repair was not allowed to move
	// component footprints (any repair with frozen transports).
	PlacementFrozen bool
	// PrevPlacement is compared against the repaired placement when
	// PlacementFrozen is set.
	PrevPlacement *place.Placement
}

// AuditRepair runs the full solution audit on the repaired solution and
// then checks the incremental-repair contract: the executed prefix —
// operation rows, the transports serving them, and their routed paths —
// is byte-identical to the previous solution; nothing new starts before
// the cut; no surviving work touches a failed component past the cut; and
// no re-planned path uses a reported dead cell.
//
// The executed set is re-derived here from (PrevSchedule, At), not taken
// from the repairer, so a repair that mislabels history cannot audit
// clean.
func AuditRepair(in Input, spec RepairSpec) *Report {
	rep := Audit(in)
	if spec.PrevSchedule == nil {
		rep.add(Repair, "input", "repair audit needs the previous schedule")
		return rep
	}
	if in.Schedule == nil || len(in.Schedule.Ops) != len(spec.PrevSchedule.Ops) {
		rep.add(Repair, "input", "repaired schedule does not cover the previous assay")
		return rep
	}

	executed := schedule.Executed(spec.PrevSchedule, spec.At)

	// 1. Executed rows are frozen; everything else starts at/after the cut.
	for id, ex := range executed {
		got, want := in.Schedule.Ops[id], spec.PrevSchedule.Ops[id]
		if ex {
			if got != want {
				rep.add(Repair, "prefix-frozen",
					"executed op %d drifted: %+v != %+v", id, got, want)
			}
			continue
		}
		if got.Start < spec.At {
			rep.add(Repair, "cut",
				"op %d re-planned to start %v before the cut %v", id, got.Start, spec.At)
		}
	}

	// 2. Nothing runs on a failed component past the cut.
	if spec.Banned != nil {
		for id, bo := range in.Schedule.Ops {
			if int(bo.Comp) < len(spec.Banned) && spec.Banned[bo.Comp] && bo.End > spec.At {
				rep.add(Repair, "banned-comp",
					"op %d occupies failed component %d until %v (cut %v)", id, bo.Comp, bo.End, spec.At)
			}
		}
	}

	// 3. Frozen transports are preserved field-for-field, keyed by the
	// dependency edge they serve (IDs are renumbered across repairs).
	type edge struct{ p, c assay.OpID }
	prevFrozen := make(map[edge]schedule.Transport)
	for _, tr := range spec.PrevSchedule.Transports {
		if executed[tr.Consumer] {
			tr.ID = 0
			prevFrozen[edge{tr.Producer, tr.Consumer}] = tr
		}
	}
	newByEdge := make(map[edge]schedule.Transport)
	newID := make(map[edge]int)
	for _, tr := range in.Schedule.Transports {
		k := edge{tr.Producer, tr.Consumer}
		newID[k] = tr.ID
		tr.ID = 0
		newByEdge[k] = tr
	}
	for k, want := range prevFrozen {
		got, ok := newByEdge[k]
		if !ok {
			rep.add(Repair, "frozen-transport",
				"frozen transport %d->%d missing from repaired schedule", k.p, k.c)
			continue
		}
		if got != want {
			rep.add(Repair, "frozen-transport",
				"frozen transport %d->%d drifted: %+v != %+v", k.p, k.c, got, want)
		}
	}

	// 4. Frozen routed paths are byte-identical; re-planned paths avoid
	// the dead cells.
	dead := make(map[route.Cell]bool, len(spec.Defects))
	for _, c := range spec.Defects {
		dead[c] = true
	}
	if in.Routing != nil {
		prevPath := make(map[edge][]route.Cell)
		if spec.PrevRouting != nil {
			prevTr := make(map[int]edge, len(spec.PrevSchedule.Transports))
			for _, tr := range spec.PrevSchedule.Transports {
				prevTr[tr.ID] = edge{tr.Producer, tr.Consumer}
			}
			for _, rt := range spec.PrevRouting.Routes {
				if k, ok := prevTr[rt.Task.ID]; ok {
					prevPath[k] = rt.Path
				}
			}
		}
		newTr := make(map[int]edge, len(in.Schedule.Transports))
		for k, id := range newID {
			newTr[id] = k
		}
		for _, rt := range in.Routing.Routes {
			k, ok := newTr[rt.Task.ID]
			if !ok {
				continue // routing/schedule mismatch is Audit's to report
			}
			if _, frozen := prevFrozen[k]; frozen {
				if !reflect.DeepEqual(rt.Path, prevPath[k]) {
					rep.add(Repair, "frozen-route",
						"frozen route %d->%d drifted from its executed path", k.p, k.c)
				}
				continue
			}
			for _, c := range rt.Path {
				if dead[c] {
					rep.add(Repair, "defect-cell",
						"re-planned route %d->%d crosses dead cell %v", k.p, k.c, c)
					break
				}
			}
		}
	}

	// 5. Placement immobility once transports have executed.
	if spec.PlacementFrozen && spec.PrevPlacement != nil && in.Placement != nil {
		if spec.PrevPlacement.W != in.Placement.W ||
			spec.PrevPlacement.H != in.Placement.H ||
			!reflect.DeepEqual(spec.PrevPlacement.Rects, in.Placement.Rects) {
			rep.add(Repair, "placement-frozen",
				"placement moved although executed transports pin the geometry")
		}
	}
	return rep
}
