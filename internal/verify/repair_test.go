package verify

import (
	"context"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
)

// repairCase is a fully repaired Synthetic3 solution cut mid-assay, plus
// the spec the repair must honour — the shared fixture for the auditor
// tests below.
type repairCase struct {
	in   Input
	spec RepairSpec
	// frozenID / suffixID are transport IDs in the repaired schedule.
	frozenID, suffixID int
}

func cloneSched(r *schedule.Result) *schedule.Result {
	c := *r
	c.Ops = append([]schedule.BoundOp(nil), r.Ops...)
	c.Transports = append([]schedule.Transport(nil), r.Transports...)
	c.Caches = append([]schedule.ChannelCache(nil), r.Caches...)
	c.Washes = append([]schedule.ComponentWash(nil), r.Washes...)
	return &c
}

func cloneRouting(r *route.Result) *route.Result {
	c := *r
	c.Routes = make([]route.RoutedTask, len(r.Routes))
	for i, rt := range r.Routes {
		rt.Path = append([]route.Cell(nil), rt.Path...)
		c.Routes[i] = rt
	}
	return &c
}

func repairFixture(t *testing.T) repairCase {
	t.Helper()
	bm := benchdata.Synthetic(3)
	comps := bm.Alloc.Instantiate()
	prev, err := schedule.Schedule(bm.Graph, comps, schedule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nets := place.BuildNets(prev, 0.6, 0.4)
	pp := place.DefaultParams()
	pp.Imax = 60
	pl, err := place.Anneal(comps, nets, pp)
	if err != nil {
		t.Fatal(err)
	}
	pr := route.DefaultParams()
	pr.RipUpRounds = 3
	prevRt, err := route.Route(prev, comps, pl, pr)
	if err != nil {
		t.Fatal(err)
	}

	at := prev.Makespan / 2
	re, err := schedule.RescheduleSuffix(prev, at, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Carry previous paths across the reschedule by dependency edge —
	// transport IDs are renumbered, edges are stable.
	type edge struct{ p, c int }
	prevByEdge := make(map[edge][]route.Cell)
	taskOf := make(map[int]schedule.Transport)
	for _, tr := range prev.Transports {
		taskOf[tr.ID] = tr
	}
	for _, rt := range prevRt.Routes {
		tr := taskOf[rt.Task.ID]
		prevByEdge[edge{int(tr.Producer), int(tr.Consumer)}] = rt.Path
	}
	spec := route.RepairSpec{Frozen: map[int]bool{}, PrevPaths: map[int][]route.Cell{}}
	executed := schedule.Executed(re, at)
	frozenID, suffixID := -1, -1
	for _, tr := range re.Transports {
		if p, ok := prevByEdge[edge{int(tr.Producer), int(tr.Consumer)}]; ok {
			spec.PrevPaths[tr.ID] = p
		}
		if executed[tr.Consumer] {
			spec.Frozen[tr.ID] = true
			frozenID = tr.ID
		} else {
			suffixID = tr.ID
		}
	}
	if frozenID < 0 || suffixID < 0 {
		t.Skip("cut left no frozen or no suffix transport")
	}
	rep, err := route.Repair(context.Background(), re, comps, pl, pr, spec)
	if err != nil {
		t.Fatal(err)
	}
	return repairCase{
		in: Input{Assay: bm.Graph, Comps: comps, Schedule: re, Placement: pl, Routing: rep},
		spec: RepairSpec{
			At:              at,
			PrevSchedule:    prev,
			PrevRouting:     prevRt,
			PlacementFrozen: true,
			PrevPlacement:   pl.Clone(),
		},
		frozenID: frozenID,
		suffixID: suffixID,
	}
}

// TestAuditRepairClean: a genuine incremental repair — suffix rescheduled
// at the cut, frozen routes carried verbatim — audits clean end to end.
func TestAuditRepairClean(t *testing.T) {
	c := repairFixture(t)
	if rep := AuditRepair(c.in, c.spec); !rep.OK() {
		t.Fatalf("honest repair rejected:\n%s", rep)
	}
}

// TestAuditRepairKillsMutants: each single-site breach of the repair
// contract must raise the matching "repair"-class violation. A repairer
// that rewrites history, schedules before the cut, keeps work on a failed
// component, bends a frozen route, routes through a dead cell, or moves
// the placement cannot audit clean.
func TestAuditRepairKillsMutants(t *testing.T) {
	t.Run("prefix-frozen", func(t *testing.T) {
		c := repairFixture(t)
		executed := schedule.Executed(c.spec.PrevSchedule, c.spec.At)
		sc := cloneSched(c.in.Schedule)
		mutated := false
		for id, ex := range executed {
			if ex {
				sc.Ops[id].Start--
				sc.Ops[id].End--
				mutated = true
				break
			}
		}
		if !mutated {
			t.Skip("no executed op at this cut")
		}
		c.in.Schedule = sc
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "prefix-frozen") {
			t.Errorf("rewritten history not reported:\n%s", rep)
		}
	})

	t.Run("cut", func(t *testing.T) {
		c := repairFixture(t)
		executed := schedule.Executed(c.spec.PrevSchedule, c.spec.At)
		sc := cloneSched(c.in.Schedule)
		mutated := false
		for id, ex := range executed {
			if !ex && sc.Ops[id].Start >= c.spec.At {
				sc.Ops[id].Start = c.spec.At - 1
				mutated = true
				break
			}
		}
		if !mutated {
			t.Skip("no suffix op at this cut")
		}
		c.in.Schedule = sc
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "cut") {
			t.Errorf("pre-cut start not reported:\n%s", rep)
		}
	})

	t.Run("banned-comp", func(t *testing.T) {
		// The schedule is untouched; the spec says a component the suffix
		// still uses has failed. The repairer should have moved that work.
		c := repairFixture(t)
		banned := make([]bool, len(c.in.Comps))
		victim := -1
		for _, bo := range c.in.Schedule.Ops {
			if bo.End > c.spec.At {
				victim = int(bo.Comp)
				break
			}
		}
		if victim < 0 {
			t.Skip("no op past the cut")
		}
		banned[victim] = true
		c.spec.Banned = banned
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "banned-comp") {
			t.Errorf("work left on failed component not reported:\n%s", rep)
		}
	})

	t.Run("frozen-transport", func(t *testing.T) {
		c := repairFixture(t)
		sc := cloneSched(c.in.Schedule)
		for i := range sc.Transports {
			if sc.Transports[i].ID == c.frozenID {
				sc.Transports[i].Depart--
			}
		}
		c.in.Schedule = sc
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "frozen-transport") {
			t.Errorf("drifted frozen transport not reported:\n%s", rep)
		}
	})

	t.Run("frozen-route", func(t *testing.T) {
		c := repairFixture(t)
		rt := cloneRouting(c.in.Routing)
		for i := range rt.Routes {
			if rt.Routes[i].Task.ID == c.frozenID {
				rt.Routes[i].Path = rt.Routes[i].Path[:len(rt.Routes[i].Path)-1]
			}
		}
		c.in.Routing = rt
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "frozen-route") {
			t.Errorf("bent frozen route not reported:\n%s", rep)
		}
	})

	t.Run("defect-cell", func(t *testing.T) {
		// The routing is untouched; the spec reports a cell on a
		// re-planned path as dead. The repairer should have avoided it.
		c := repairFixture(t)
		var cell route.Cell
		found := false
		for _, rt := range c.in.Routing.Routes {
			if rt.Task.ID == c.suffixID && len(rt.Path) > 0 {
				cell = rt.Path[len(rt.Path)/2]
				found = true
			}
		}
		if !found {
			t.Skip("suffix transport has no routed path")
		}
		c.spec.Defects = []route.Cell{cell}
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "defect-cell") {
			t.Errorf("route through dead cell not reported:\n%s", rep)
		}
	})

	t.Run("placement-frozen", func(t *testing.T) {
		c := repairFixture(t)
		moved := c.in.Placement.Clone()
		moved.Rects[0].X++
		c.spec.PrevPlacement = moved
		if rep := AuditRepair(c.in, c.spec); !hasRule(rep, Repair, "placement-frozen") {
			t.Errorf("moved placement not reported:\n%s", rep)
		}
	})
}
