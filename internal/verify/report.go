// Package verify is an implementation-independent auditor for complete
// synthesis solutions. It re-derives every constraint the three pipeline
// stages must satisfy — sequencing-graph precedence and component
// exclusivity in the schedule, DCSA storage legality (Eq. 2 and the Case I
// lowest-diffusion reuse rule of Algorithm 1), placement bounds and
// overlap, and the time-slot routing condition of Eq. 5 — directly from
// the paper's formulation, sharing no logic with the algorithms that
// construct solutions. A violation anywhere is reported as a typed entry
// in a Report rather than aborting at the first failure, so tests and CI
// gates can assert on specific failure classes.
//
// The auditor is the correctness backstop for the golden-fingerprint
// regression suite: fingerprints pin one implementation's output bytes,
// while the auditor pins the constraints any implementation must meet.
package verify

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Class partitions violations by the constraint family they break.
type Class string

// The violation classes, one per independently checkable rule family.
const (
	// Structure: malformed records — wrong counts, dangling IDs, bad
	// durations, type-incompatible bindings.
	Structure Class = "structure"
	// Precedence: a fluidic dependency of the sequencing graph is not
	// realised, or its transport violates the t_c timing discipline.
	Precedence Class = "precedence"
	// Exclusivity: two operations (or an operation and a wash) overlap on
	// one component.
	Exclusivity Class = "exclusivity"
	// Storage: DCSA storage legality — a component accepted a new binding
	// before its residue wash completed, a wash is missing, duplicated or
	// has the wrong duration for its residue's diffusion coefficient.
	Storage Class = "storage"
	// CaseI: the proposed binder's Case I rule — a resident parent output
	// that must be consumed in place was not, or a higher-diffusion parent
	// was preferred over the lowest-diffusion resident one.
	CaseI Class = "case1"
	// CacheCl: a distributed channel-storage episode is inconsistent with
	// the transports it feeds.
	CacheCl Class = "cache"
	// Placement: a component footprint leaves the plane or overlaps
	// another.
	Placement Class = "placement"
	// Routing: a transportation task's path is missing, disconnected,
	// crosses a component footprint or terminates off its ports.
	Routing Class = "routing"
	// Slot: two transportation tasks of different fluids occupy one grid
	// cell in intersecting time slots (the conflict condition of Eq. 5).
	Slot Class = "slot"
	// Metric: a reported aggregate (makespan, union channel length, total
	// channel wash time) disagrees with its re-summed value.
	Metric Class = "metric"
)

// Violation is one broken constraint.
type Violation struct {
	Class Class `json:"class"`
	// Rule names the specific check within the class, e.g. "wash-duration".
	Rule string `json:"rule"`
	// Msg is the human-readable account with the offending IDs and times.
	Msg string `json:"msg"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s/%s] %s", v.Class, v.Rule, v.Msg)
}

// Stats counts what the audit examined, so "no violations" can be told
// apart from "nothing to check".
type Stats struct {
	Ops        int `json:"ops"`
	Edges      int `json:"edges"`
	Transports int `json:"transports"`
	Caches     int `json:"caches"`
	Washes     int `json:"washes"`
	Rects      int `json:"rects"`
	Routes     int `json:"routes"`
	// Cells is the number of distinct grid cells carrying at least one
	// occupancy slot; Slots the total slot count audited pairwise.
	Cells int `json:"cells"`
	Slots int `json:"slots"`
}

// Report is the structured outcome of one audit.
type Report struct {
	// Name is the audited assay's name.
	Name string `json:"assay"`
	// Baseline records which algorithm family the solution claims; the
	// Case I policy checks only apply to the proposed flow.
	Baseline   bool        `json:"baseline"`
	Violations []Violation `json:"violations"`
	Stats      Stats       `json:"stats"`
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Count returns the number of violations in the given class.
func (r *Report) Count(c Class) int {
	n := 0
	for _, v := range r.Violations {
		if v.Class == c {
			n++
		}
	}
	return n
}

// ByClass returns the violations of one class, in detection order.
func (r *Report) ByClass(c Class) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Class == c {
			out = append(out, v)
		}
	}
	return out
}

// Err returns nil for a clean report, or an error summarising the first
// violation and the total count — the form core.Options.Verify surfaces.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("verify: %d violation(s), first: %s", len(r.Violations), r.Violations[0])
}

// String renders the report as one line per violation (or a clean stamp).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify %s: %d ops, %d transports, %d routes, %d slots",
		r.Name, r.Stats.Ops, r.Stats.Transports, r.Stats.Routes, r.Stats.Slots)
	if r.OK() {
		b.WriteString(": OK")
		return b.String()
	}
	fmt.Fprintf(&b, ": %d violation(s)", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// MarshalJSON emits the report with a never-null violations array, so
// `mfverify -json` consumers can index it unconditionally.
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report
	a := alias(*r)
	if a.Violations == nil {
		a.Violations = []Violation{}
	}
	return json.Marshal(a)
}

// add records a violation.
func (r *Report) add(c Class, rule, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{
		Class: c,
		Rule:  rule,
		Msg:   fmt.Sprintf(format, args...),
	})
}
