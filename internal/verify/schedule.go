package verify

import (
	"sort"

	"repro/internal/assay"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// checkStructure validates that every record can be indexed safely: the
// decision vector covers the assay, every component, operation, residue
// and transport endpoint reference resolves, and durations are consistent.
// It returns false when later checks could not index the records without
// reading out of bounds.
func (a *auditor) checkStructure() bool {
	g, s, rep := a.in.Assay, a.in.Schedule, a.rep
	rep.Stats.Ops = len(s.Ops)
	rep.Stats.Edges = g.NumEdges()
	rep.Stats.Transports = len(s.Transports)
	rep.Stats.Caches = len(s.Caches)
	rep.Stats.Washes = len(s.Washes)

	ok := true
	if len(s.Ops) != g.NumOps() {
		rep.add(Structure, "op-count", "%d scheduling decisions for %d operations", len(s.Ops), g.NumOps())
		return false
	}
	for i, c := range a.in.Comps {
		if int(c.ID) != i {
			rep.add(Structure, "comp-ids", "component %d carries non-dense ID %d", i, c.ID)
			ok = false
		}
	}
	for i, bo := range s.Ops {
		op := g.Op(assay.OpID(i))
		if bo.Op != op.ID {
			rep.add(Structure, "op-id", "decision %d records operation ID %d", i, bo.Op)
			ok = false
		}
		if bo.Comp < 0 || int(bo.Comp) >= len(a.in.Comps) {
			rep.add(Structure, "op-comp", "operation %q bound to unknown component %d", op.Name, bo.Comp)
			ok = false
			continue
		}
		if a.in.Comps[bo.Comp].Kind.Type != op.Type {
			rep.add(Structure, "op-type", "%v operation %q bound to %s",
				op.Type, op.Name, a.in.Comps[bo.Comp].Name())
		}
		if bo.Start < 0 {
			rep.add(Structure, "op-start", "operation %q starts at %v", op.Name, bo.Start)
		}
		if bo.End != bo.Start+op.Duration {
			rep.add(Structure, "op-duration", "operation %q runs [%v,%v), duration says %v",
				op.Name, bo.Start, bo.End, op.Duration)
		}
	}
	for _, tr := range s.Transports {
		if tr.Producer < 0 || int(tr.Producer) >= g.NumOps() ||
			tr.Consumer < 0 || int(tr.Consumer) >= g.NumOps() {
			rep.add(Structure, "transport-ops", "transport %d references unknown operations %d->%d",
				tr.ID, tr.Producer, tr.Consumer)
			ok = false
		}
		if tr.From < 0 || int(tr.From) >= len(a.in.Comps) ||
			tr.To < 0 || int(tr.To) >= len(a.in.Comps) {
			rep.add(Structure, "transport-comps", "transport %d moves between unknown components %d->%d",
				tr.ID, tr.From, tr.To)
			ok = false
		}
	}
	for i, w := range s.Washes {
		if w.Comp < 0 || int(w.Comp) >= len(a.in.Comps) {
			rep.add(Structure, "wash-comp-id", "wash %d on unknown component %d", i, w.Comp)
			ok = false
		}
		if w.Residue < 0 || int(w.Residue) >= g.NumOps() {
			rep.add(Structure, "wash-residue-id", "wash %d removes residue of unknown operation %d", i, w.Residue)
			ok = false
		}
		if w.End < w.Start {
			rep.add(Structure, "wash-interval", "wash %d spans negative interval [%v,%v)", i, w.Start, w.End)
		}
	}
	for i, ce := range s.Caches {
		if ce.Producer < 0 || int(ce.Producer) >= g.NumOps() {
			rep.add(Structure, "cache-producer-id", "cache %d stores output of unknown operation %d", i, ce.Producer)
			ok = false
		}
		if ce.From < 0 || int(ce.From) >= len(a.in.Comps) {
			rep.add(Structure, "cache-comp-id", "cache %d evicted from unknown component %d", i, ce.From)
			ok = false
		}
	}
	return ok
}

// transportsByEdge indexes the transports by (producer, consumer),
// reporting duplicates as precedence violations.
func (a *auditor) transportsByEdge() map[[2]assay.OpID]*schedule.Transport {
	byEdge := make(map[[2]assay.OpID]*schedule.Transport, len(a.in.Schedule.Transports))
	for i := range a.in.Schedule.Transports {
		tr := &a.in.Schedule.Transports[i]
		k := [2]assay.OpID{tr.Producer, tr.Consumer}
		if byEdge[k] != nil {
			a.rep.add(Precedence, "duplicate-transport", "edge %d->%d served by more than one transport", tr.Producer, tr.Consumer)
			continue
		}
		byEdge[k] = tr
	}
	return byEdge
}

// checkPrecedence audits the realisation of every fluidic dependency
// e_{i,j}: either in-place consumption on a shared component, or exactly
// one transportation task of duration t_c that departs no earlier than the
// producer's end and arrives no later than the consumer's start.
func (a *auditor) checkPrecedence() {
	g, s, rep := a.in.Assay, a.in.Schedule, a.rep
	tc := s.Opts.TC
	byEdge := a.transportsByEdge()

	for _, e := range g.Edges() {
		p, c := s.Ops[e.From], s.Ops[e.To]
		tr := byEdge[[2]assay.OpID{e.From, e.To}]
		if c.InPlace && c.InPlaceParent == e.From {
			if tr != nil {
				rep.add(Precedence, "inplace-and-transport", "edge %d->%d consumed in place but also transported", e.From, e.To)
			}
			if p.Comp != c.Comp {
				rep.add(Precedence, "inplace-cross-comp", "edge %d->%d in place across components %d and %d",
					e.From, e.To, p.Comp, c.Comp)
			}
			if c.Start < p.End {
				rep.add(Precedence, "inplace-order", "in-place consumer %d starts %v before producer %d ends %v",
					e.To, c.Start, e.From, p.End)
			}
			continue
		}
		if tr == nil {
			rep.add(Precedence, "edge-unrealised", "edge %d->%d has neither transport nor in-place consumption", e.From, e.To)
			continue
		}
		if tr.Arrive-tr.Depart != tc {
			rep.add(Precedence, "transport-duration", "transport %d takes %v, t_c is %v", tr.ID, tr.Arrive-tr.Depart, tc)
		}
		if tr.Depart < p.End {
			rep.add(Precedence, "transport-early", "transport %d departs %v before producer %d ends %v",
				tr.ID, tr.Depart, e.From, p.End)
		}
		if tr.Arrive > c.Start {
			rep.add(Precedence, "transport-late", "transport %d arrives %v after consumer %d starts %v",
				tr.ID, tr.Arrive, e.To, c.Start)
		}
		if tr.From != p.Comp {
			rep.add(Precedence, "transport-src", "transport %d departs from component %d, producer %d ran on %d",
				tr.ID, tr.From, e.From, p.Comp)
		}
		if tr.To != c.Comp {
			rep.add(Precedence, "transport-dst", "transport %d arrives at component %d, consumer %d runs on %d",
				tr.ID, tr.To, e.To, c.Comp)
		}
		if tr.FromChannel && (tr.CacheStart < p.End || tr.CacheStart > tr.Depart) {
			rep.add(Precedence, "transport-cache-window", "transport %d cached at %v, outside [%v,%v]",
				tr.ID, tr.CacheStart, p.End, tr.Depart)
		}
	}

	edges := make(map[[2]assay.OpID]bool, g.NumEdges())
	for _, e := range g.Edges() {
		edges[[2]assay.OpID{e.From, e.To}] = true
	}
	for _, tr := range s.Transports {
		if !edges[[2]assay.OpID{tr.Producer, tr.Consumer}] {
			rep.add(Precedence, "transport-no-edge", "transport %d serves non-existent dependency %d->%d",
				tr.ID, tr.Producer, tr.Consumer)
		}
	}
	for i, bo := range s.Ops {
		if bo.InPlace && !hasParent(g, assay.OpID(i), bo.InPlaceParent) {
			rep.add(Precedence, "inplace-not-parent", "operation %d claims in-place consumption of %d, which is not a parent",
				i, bo.InPlaceParent)
		}
	}
}

// opsByComp groups the scheduling decisions per component, sorted by
// start time (ties by operation ID for determinism).
func (a *auditor) opsByComp() [][]schedule.BoundOp {
	by := make([][]schedule.BoundOp, len(a.in.Comps))
	for _, bo := range a.in.Schedule.Ops {
		by[bo.Comp] = append(by[bo.Comp], bo)
	}
	for _, ops := range by {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Start != ops[j].Start {
				return ops[i].Start < ops[j].Start
			}
			return ops[i].Op < ops[j].Op
		})
	}
	return by
}

// checkExclusivity audits component resource exclusivity: no two
// operations overlap on one component, and no wash overlaps an operation
// on its component.
func (a *auditor) checkExclusivity() {
	rep := a.rep
	byComp := a.opsByComp()
	for c, ops := range byComp {
		for i := 1; i < len(ops); i++ {
			if ops[i].Start < ops[i-1].End {
				rep.add(Exclusivity, "op-overlap", "operations %d and %d overlap on %s ([%v,%v) vs [%v,%v))",
					ops[i-1].Op, ops[i].Op, a.in.Comps[c].Name(),
					ops[i-1].Start, ops[i-1].End, ops[i].Start, ops[i].End)
			}
		}
	}
	for _, w := range a.in.Schedule.Washes {
		for _, bo := range byComp[w.Comp] {
			if w.Start < bo.End && bo.Start < w.End {
				rep.add(Exclusivity, "wash-overlap", "wash of residue %d overlaps operation %d on %s ([%v,%v) vs [%v,%v))",
					w.Residue, bo.Op, a.in.Comps[w.Comp].Name(), w.Start, w.End, bo.Start, bo.End)
			}
		}
	}
}

// inPlaceConsumerOf maps each operation to the child that consumed its
// output in place (NoOp when the output left through transports).
func (a *auditor) inPlaceConsumerOf() []assay.OpID {
	consumer := make([]assay.OpID, a.in.Assay.NumOps())
	for i := range consumer {
		consumer[i] = assay.NoOp
	}
	for i, bo := range a.in.Schedule.Ops {
		if bo.InPlace && bo.InPlaceParent >= 0 && int(bo.InPlaceParent) < len(consumer) {
			consumer[bo.InPlaceParent] = assay.OpID(i)
		}
	}
	return consumer
}

// residueDeparture returns the instant op's residue left its component:
// the eviction instant when the fluid moved to channel storage, the
// latest transport departure otherwise, or the operation's end for a
// final product collected immediately.
func (a *auditor) residueDeparture(op assay.OpID, caches map[assay.OpID]*schedule.ChannelCache) unit.Time {
	if ce := caches[op]; ce != nil {
		return ce.Start
	}
	dep := a.in.Schedule.Ops[op].End
	for _, tr := range a.in.Schedule.Transports {
		if tr.Producer == op && tr.Depart > dep {
			dep = tr.Depart
		}
	}
	return dep
}

// cachesByProducer indexes the channel-cache episodes, reporting
// duplicates (one token is evicted at most once).
func (a *auditor) cachesByProducer() map[assay.OpID]*schedule.ChannelCache {
	by := make(map[assay.OpID]*schedule.ChannelCache, len(a.in.Schedule.Caches))
	for i := range a.in.Schedule.Caches {
		ce := &a.in.Schedule.Caches[i]
		if by[ce.Producer] != nil {
			a.rep.add(CacheCl, "cache-duplicate", "output of operation %d cached twice", ce.Producer)
			continue
		}
		by[ce.Producer] = ce
	}
	return by
}

// checkStorage audits the DCSA storage-legality rules derived from Eq. 2:
// every residue is washed exactly once with the duration its diffusion
// coefficient demands (unless the output was consumed in place, which
// eliminates the wash), the wash starts only after the residue departed,
// and a component never accepts a new binding before the previous
// residue's wash completed — t_ready(c) = t_remove(prev) + wash(prev).
func (a *auditor) checkStorage() {
	g, s, rep := a.in.Assay, a.in.Schedule, a.rep
	wm := s.Opts.Wash
	inPlace := a.inPlaceConsumerOf()
	caches := a.cachesByProducer()

	washes := make(map[assay.OpID][]schedule.ComponentWash)
	for _, w := range s.Washes {
		washes[w.Residue] = append(washes[w.Residue], w)
	}

	for i := range s.Ops {
		op := g.Op(assay.OpID(i))
		ws := washes[op.ID]
		if inPlace[i] != assay.NoOp {
			if len(ws) > 0 {
				rep.add(Storage, "wash-unexpected", "residue of %d was consumed in place by %d yet washed", i, inPlace[i])
			}
			continue
		}
		switch {
		case len(ws) == 0:
			rep.add(Storage, "wash-missing", "residue of operation %d on component %d never washed", i, s.Ops[i].Comp)
			continue
		case len(ws) > 1:
			rep.add(Storage, "wash-duplicate", "residue of operation %d washed %d times", i, len(ws))
		}
		w := ws[0]
		if want := wm.WashTime(op.Output.D); w.End-w.Start != want {
			rep.add(Storage, "wash-duration", "wash of residue %d (%s, D=%v) lasts %v, model demands %v",
				i, op.Output.Name, op.Output.D, w.End-w.Start, want)
		}
		if w.Comp != s.Ops[i].Comp {
			rep.add(Storage, "wash-comp", "residue of %d left on component %d but washed on %d",
				i, s.Ops[i].Comp, w.Comp)
		}
		if dep := a.residueDeparture(assay.OpID(i), caches); w.Start < dep {
			rep.add(Storage, "wash-early", "wash of residue %d starts %v while the fluid departs only at %v",
				i, w.Start, dep)
		}
	}

	// Transports must carry the producer's fluid and the wash time its
	// residue imposes on the channel cells it crosses — the quantities the
	// router's Eq. 5 weights and the Fig. 9 accounting depend on.
	for _, tr := range s.Transports {
		out := g.Op(tr.Producer).Output
		if tr.Fluid.Name != out.Name || tr.Fluid.D != out.D {
			rep.add(Storage, "transport-fluid", "transport %d carries %q (D=%v), producer %d outputs %q (D=%v)",
				tr.ID, tr.Fluid.Name, tr.Fluid.D, tr.Producer, out.Name, out.D)
		}
		if want := wm.WashTime(out.D); tr.WashTime != want {
			rep.add(Storage, "transport-wash", "transport %d declares wash %v, residue of %q demands %v",
				tr.ID, tr.WashTime, out.Name, want)
		}
	}

	// Eq. 2: between consecutive bindings A then B on one component, A's
	// residue wash must complete before B starts — unless B consumed A's
	// output in place, which removes both the transport and the wash.
	for c, ops := range a.opsByComp() {
		for i := 1; i < len(ops); i++ {
			prev, cur := ops[i-1], ops[i]
			if cur.InPlace && cur.InPlaceParent == prev.Op {
				continue
			}
			if cons := inPlace[prev.Op]; cons != assay.NoOp {
				// A later operation claims in-place consumption of prev's
				// output even though cur ran in between — impossible, the
				// intervening binding would have evicted the fluid.
				rep.add(Storage, "inplace-not-adjacent", "operation %d consumed %d in place on component %d despite intervening operation %d",
					cons, prev.Op, c, cur.Op)
				continue
			}
			ws := washes[prev.Op]
			if len(ws) == 0 {
				continue // reported as wash-missing above
			}
			if ws[0].End > cur.Start {
				rep.add(Storage, "rebind-before-wash", "component %d rebinds to operation %d at %v before the wash of residue %d completes at %v",
					c, cur.Op, cur.Start, prev.Op, ws[0].End)
			}
		}
	}
}

// checkCaches audits the distributed channel-storage episodes against the
// transports they feed: an episode opens no earlier than its producer's
// end, every from-channel transport departs from an episode of its
// producer within the episode's span, and the episode closes exactly at
// the last such departure.
func (a *auditor) checkCaches() {
	s, rep := a.in.Schedule, a.rep
	caches := a.cachesByProducer()

	lastDepart := make(map[assay.OpID]unit.Time)
	served := make(map[assay.OpID]bool)
	for _, tr := range s.Transports {
		if !tr.FromChannel {
			continue
		}
		served[tr.Producer] = true
		ce := caches[tr.Producer]
		if ce == nil {
			rep.add(CacheCl, "cache-missing", "transport %d departs from channel storage but operation %d has no cache episode",
				tr.ID, tr.Producer)
			continue
		}
		if tr.CacheStart != ce.Start {
			rep.add(CacheCl, "cache-start", "transport %d records cache start %v, episode of %d opens at %v",
				tr.ID, tr.CacheStart, tr.Producer, ce.Start)
		}
		if tr.Depart < ce.Start || tr.Depart > ce.End {
			rep.add(CacheCl, "cache-span", "transport %d departs channel storage at %v, outside episode [%v,%v)",
				tr.ID, tr.Depart, ce.Start, ce.End)
		}
		if tr.Depart > lastDepart[tr.Producer] {
			lastDepart[tr.Producer] = tr.Depart
		}
	}
	for p, ce := range caches {
		if ce.End < ce.Start {
			rep.add(CacheCl, "cache-negative", "cache episode of %d spans negative interval [%v,%v)", p, ce.Start, ce.End)
		}
		if ce.Start < s.Ops[p].End {
			rep.add(CacheCl, "cache-early", "cache episode of %d opens %v before the operation ends %v",
				p, ce.Start, s.Ops[p].End)
		}
		if ce.From != s.Ops[p].Comp {
			rep.add(CacheCl, "cache-comp", "cache episode of %d evicted from component %d, operation ran on %d",
				p, ce.From, s.Ops[p].Comp)
		}
		if !served[p] {
			rep.add(CacheCl, "cache-unused", "cache episode of %d feeds no from-channel transport", p)
			continue
		}
		if want := unit.MaxTime(ce.Start, lastDepart[p]); ce.End != want {
			rep.add(CacheCl, "cache-end", "cache episode of %d closes at %v, last departure is %v", p, ce.End, want)
		}
	}
}

// checkCaseI audits the binding policy of Algorithm 1's Case I for the
// proposed flow: whenever a parent's output provably sat in its component
// with the audited operation as its only consumer (same type, a single
// child, never evicted to channel storage), the operation must consume a
// resident parent in place — and never a strictly higher-diffusion one
// while a lower-diffusion resident parent was available.
func (a *auditor) checkCaseI() {
	g, s, rep := a.in.Assay, a.in.Schedule, a.rep
	caches := a.cachesByProducer()

	// eligible reports that parent p's output was certainly resident and
	// Case-I-consumable when the binder processed op: p produces for op
	// alone, was never evicted, and matches op's component type.
	eligible := func(op assay.Operation, p assay.OpID) bool {
		pop := g.Op(p)
		return pop.Type == op.Type && len(g.Children(p)) == 1 && caches[p] == nil
	}

	for i, bo := range s.Ops {
		op := g.Op(assay.OpID(i))
		bestD := unit.Diffusion(0)
		found := false
		for _, p := range g.Parents(op.ID) {
			if !eligible(op, p) {
				continue
			}
			if d := g.Op(p).Output.D; !found || d < bestD {
				bestD = d
				found = true
			}
		}
		if !found {
			continue
		}
		if !bo.InPlace {
			rep.add(CaseI, "case1-missed", "operation %d had a resident single-consumer parent (D=%v) but was not bound in place",
				i, bestD)
			continue
		}
		if pd := g.Op(bo.InPlaceParent).Output.D; pd > bestD {
			rep.add(CaseI, "case1-not-lowest", "operation %d consumed parent %d (D=%v) in place while a D=%v parent was resident",
				i, bo.InPlaceParent, pd, bestD)
		}
	}
}

// checkScheduleMetrics audits the reported schedule aggregates.
func (a *auditor) checkScheduleMetrics() {
	s, rep := a.in.Schedule, a.rep
	var maxEnd unit.Time
	for _, bo := range s.Ops {
		if bo.End > maxEnd {
			maxEnd = bo.End
		}
	}
	if s.Makespan != maxEnd {
		rep.add(Metric, "makespan", "reported makespan %v, latest operation ends at %v", s.Makespan, maxEnd)
	}
	if u := s.Utilization(); u < 0 || u > 1 {
		rep.add(Metric, "utilization", "utilization %v outside [0,1]", u)
	}
}

// hasParent reports whether p is a parent of o in the sequencing graph.
func hasParent(g *assay.Graph, o, p assay.OpID) bool {
	for _, q := range g.Parents(o) {
		if q == p {
			return true
		}
	}
	return false
}
