package verify

import (
	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
)

// Input is a complete solution to audit. Assay, Comps and Schedule are
// mandatory; Placement and Routing may be nil to audit a schedule-only
// result (e.g. the output of internal/exact), and Routing requires
// Placement. The schedule options (t_c, wash model) are read from
// Schedule.Opts and the grid pitch from Routing — the auditor needs the
// problem parameters, never the solver's parameters.
type Input struct {
	Assay     *assay.Graph
	Comps     []chip.Component
	Schedule  *schedule.Result
	Placement *place.Placement
	Routing   *route.Result
	// Baseline solutions are exempt from the Case I policy checks: the
	// comparison algorithm BA deliberately ignores resident fluids.
	Baseline bool
}

// Audit re-derives every constraint of the DCSA formulation against the
// solution and returns all violations found. It never mutates its input
// and never stops early: a report lists every broken rule it can still
// meaningfully evaluate (structurally broken sections are skipped once
// their records cannot be indexed safely).
func Audit(in Input) *Report {
	rep := &Report{Baseline: in.Baseline}
	if in.Assay != nil {
		rep.Name = in.Assay.Name()
	}

	if in.Assay == nil || in.Schedule == nil {
		rep.add(Structure, "input", "audit needs at least an assay and a schedule")
		return rep
	}
	if len(in.Comps) == 0 {
		rep.add(Structure, "input", "no components allocated")
		return rep
	}

	a := &auditor{in: in, rep: rep}
	if !a.checkStructure() {
		// Records cannot be indexed safely; the remaining checks would
		// read out of bounds rather than find real violations.
		return rep
	}
	a.checkPrecedence()
	a.checkExclusivity()
	a.checkStorage()
	a.checkCaches()
	if !in.Baseline {
		a.checkCaseI()
	}

	if in.Placement != nil {
		a.checkPlacement()
		if in.Routing != nil {
			a.checkRouting()
		}
	} else if in.Routing != nil {
		rep.add(Structure, "input", "routing given without a placement")
	}
	a.checkScheduleMetrics()
	return rep
}

// auditor carries the cross-check state shared by the rule families.
type auditor struct {
	in  Input
	rep *Report
}
