package verify

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// The fixtures are minimal hand-built solutions, each constructed to be
// audit-clean; every table case below applies one targeted corruption and
// asserts the auditor reports the exact rule it breaks. All times are the
// paper's defaults (t_c = 2 s) and the two fluids sit on the wash model's
// calibration points so wash durations are exact.
var (
	testWash = fluid.DefaultWashModel()
	// fastFluid is a high-diffusion (quick-wash) sample, slowFluid a
	// low-diffusion (slow-wash) one.
	fastFluid = fluid.Fluid{Name: "s-fast", D: unit.DiffusionSmallMolecule}
	slowFluid = fluid.Fluid{Name: "s-slow", D: unit.DiffusionLargeVirus}
)

func sec(s float64) unit.Time { return unit.Seconds(s) }

// twoStep: mix0 on the mixer [0,4s), one transport [4s,6s), heat1 on the
// heater [6s,9s). Schedule-only (no placement or routing).
func twoStep() Input {
	b := assay.NewBuilder("twoStep")
	o0 := b.AddOp("mix0", assay.Mix, sec(4), fastFluid)
	o1 := b.AddOp("heat1", assay.Heat, sec(3), slowFluid)
	b.AddDep(o0, o1)
	g := b.MustBuild()
	comps := chip.Allocation{1, 1, 0, 0}.Instantiate()
	s := &schedule.Result{Assay: g, Comps: comps, Opts: schedule.DefaultOptions(), Makespan: sec(9)}
	s.Ops = []schedule.BoundOp{
		{Op: o0, Comp: 0, Start: 0, End: sec(4)},
		{Op: o1, Comp: 1, Start: sec(6), End: sec(9)},
	}
	s.Transports = []schedule.Transport{{
		ID: 0, Producer: o0, Consumer: o1, From: 0, To: 1,
		Depart: sec(4), Arrive: sec(6),
		Fluid: fastFluid, WashTime: testWash.WashTime(fastFluid.D),
	}}
	s.Washes = []schedule.ComponentWash{
		{Comp: 0, Residue: o0, Start: sec(4), End: sec(4) + testWash.WashTime(fastFluid.D)},
		{Comp: 1, Residue: o1, Start: sec(9), End: sec(9) + testWash.WashTime(slowFluid.D)},
	}
	return Input{Assay: g, Comps: comps, Schedule: s}
}

// inPlace: mix0 [0,4s) and mix1 [4s,7s) on one mixer, the child consuming
// the parent's output in place (Case I) — no transport, no parent wash.
func inPlace() Input {
	b := assay.NewBuilder("inPlace")
	o0 := b.AddOp("mix0", assay.Mix, sec(4), fastFluid)
	o1 := b.AddOp("mix1", assay.Mix, sec(3), slowFluid)
	b.AddDep(o0, o1)
	g := b.MustBuild()
	comps := chip.Allocation{1, 0, 0, 0}.Instantiate()
	s := &schedule.Result{Assay: g, Comps: comps, Opts: schedule.DefaultOptions(), Makespan: sec(7)}
	s.Ops = []schedule.BoundOp{
		{Op: o0, Comp: 0, Start: 0, End: sec(4)},
		{Op: o1, Comp: 0, Start: sec(4), End: sec(7), InPlace: true, InPlaceParent: o0},
	}
	s.Washes = []schedule.ComponentWash{
		{Comp: 0, Residue: o1, Start: sec(7), End: sec(7) + testWash.WashTime(slowFluid.D)},
	}
	return Input{Assay: g, Comps: comps, Schedule: s}
}

// cached: twoStep, but the mixer's output is evicted into channel storage
// at 4s, parks until 7s and only then moves to the heater ([7s,9s)).
func cached() Input {
	in := twoStep()
	s := in.Schedule
	tr := &s.Transports[0]
	tr.FromChannel, tr.CacheStart = true, sec(4)
	tr.Depart, tr.Arrive = sec(7), sec(9)
	s.Ops[1].Start, s.Ops[1].End = sec(9), sec(12)
	s.Makespan = sec(12)
	s.Washes[1].Start, s.Washes[1].End = sec(12), sec(12)+testWash.WashTime(slowFluid.D)
	s.Caches = []schedule.ChannelCache{{
		Producer: s.Ops[0].Op, From: 0, Start: sec(4), End: sec(7), Fluid: fastFluid,
	}}
	return in
}

// twoParents: mix0 (high-D output) and mix1 (low-D output) both feed mix2;
// with two mixers both parents are resident and Case I must pick the
// low-diffusion one (mix1), while mix0's output is transported over.
func twoParents() Input {
	b := assay.NewBuilder("twoParents")
	o0 := b.AddOp("mix0", assay.Mix, sec(4), fastFluid)
	o1 := b.AddOp("mix1", assay.Mix, sec(4), slowFluid)
	o2 := b.AddOp("mix2", assay.Mix, sec(4), fastFluid)
	b.AddDep(o0, o2)
	b.AddDep(o1, o2)
	g := b.MustBuild()
	comps := chip.Allocation{2, 0, 0, 0}.Instantiate()
	s := &schedule.Result{Assay: g, Comps: comps, Opts: schedule.DefaultOptions(), Makespan: sec(10)}
	s.Ops = []schedule.BoundOp{
		{Op: o0, Comp: 0, Start: 0, End: sec(4)},
		{Op: o1, Comp: 1, Start: 0, End: sec(4)},
		{Op: o2, Comp: 1, Start: sec(6), End: sec(10), InPlace: true, InPlaceParent: o1},
	}
	s.Transports = []schedule.Transport{{
		ID: 0, Producer: o0, Consumer: o2, From: 0, To: 1,
		Depart: sec(4), Arrive: sec(6),
		Fluid: fastFluid, WashTime: testWash.WashTime(fastFluid.D),
	}}
	s.Washes = []schedule.ComponentWash{
		{Comp: 0, Residue: o0, Start: sec(4), End: sec(4) + testWash.WashTime(fastFluid.D)},
		{Comp: 1, Residue: o2, Start: sec(10), End: sec(10) + testWash.WashTime(fastFluid.D)},
	}
	return Input{Assay: g, Comps: comps, Schedule: s}
}

// chainRouted: mix0 (mixer) → heat1 (heater) → mix2 (mixer again), placed
// side by side and routed through the 4-cell corridor between them — the
// full-input fixture for the placement, routing, slot and metric rules.
// The two transports traverse the same corridor cells in opposite
// directions in disjoint windows, so the wash re-sum charges both fluids.
func chainRouted() Input {
	b := assay.NewBuilder("chainRouted")
	o0 := b.AddOp("mix0", assay.Mix, sec(4), fastFluid)
	o1 := b.AddOp("heat1", assay.Heat, sec(3), slowFluid)
	o2 := b.AddOp("mix2", assay.Mix, sec(4), fastFluid)
	b.AddDep(o0, o1)
	b.AddDep(o1, o2)
	g := b.MustBuild()
	comps := chip.Allocation{1, 1, 0, 0}.Instantiate()
	w0 := testWash.WashTime(fastFluid.D)
	w1 := testWash.WashTime(slowFluid.D)
	s := &schedule.Result{Assay: g, Comps: comps, Opts: schedule.DefaultOptions(), Makespan: sec(15)}
	s.Ops = []schedule.BoundOp{
		{Op: o0, Comp: 0, Start: 0, End: sec(4)},
		{Op: o1, Comp: 1, Start: sec(6), End: sec(9)},
		{Op: o2, Comp: 0, Start: sec(11), End: sec(15)},
	}
	s.Transports = []schedule.Transport{
		{ID: 0, Producer: o0, Consumer: o1, From: 0, To: 1,
			Depart: sec(4), Arrive: sec(6), Fluid: fastFluid, WashTime: w0},
		{ID: 1, Producer: o1, Consumer: o2, From: 1, To: 0,
			Depart: sec(9), Arrive: sec(11), Fluid: slowFluid, WashTime: w1},
	}
	s.Washes = []schedule.ComponentWash{
		{Comp: 0, Residue: o0, Start: sec(4), End: sec(4) + w0},
		{Comp: 1, Residue: o1, Start: sec(9), End: sec(9) + w1},
		{Comp: 0, Residue: o2, Start: sec(15), End: sec(15) + w0},
	}

	// Mixer 4x3 at the origin, heater 3x2 at x=8; the corridor between
	// them is row 0, columns 4..7.
	pl := &place.Placement{W: 11, H: 3, Rects: []place.Rect{
		{X: 0, Y: 0, W: 4, H: 3},
		{X: 8, Y: 0, W: 3, H: 2},
	}}
	corridor := []route.Cell{{X: 4, Y: 0}, {X: 5, Y: 0}, {X: 6, Y: 0}, {X: 7, Y: 0}}
	reverse := []route.Cell{{X: 7, Y: 0}, {X: 6, Y: 0}, {X: 5, Y: 0}, {X: 4, Y: 0}}
	res := &route.Result{
		GridW: 11, GridH: 3, Pitch: route.DefaultParams().Pitch,
		Routes: []route.RoutedTask{
			{Task: route.Task{ID: 0}, Path: corridor},
			{Task: route.Task{ID: 1}, Path: reverse},
		},
		UnionCells:  4,
		ChannelWash: 4 * (w0 + w1),
	}
	return Input{Assay: g, Comps: comps, Schedule: s, Placement: pl, Routing: res}
}

func hasRule(r *Report, c Class, rule string) bool {
	for _, v := range r.ByClass(c) {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// TestFixturesAuditClean pins the precondition every corruption case
// depends on: the hand-built fixtures themselves carry zero violations.
func TestFixturesAuditClean(t *testing.T) {
	for _, f := range []struct {
		name  string
		build func() Input
	}{
		{"twoStep", twoStep},
		{"inPlace", inPlace},
		{"cached", cached},
		{"twoParents", twoParents},
		{"chainRouted", chainRouted},
	} {
		if rep := Audit(f.build()); !rep.OK() {
			t.Errorf("%s fixture is not clean:\n%s", f.name, rep)
		}
	}
}

// TestViolationRules corrupts each fixture one rule at a time and asserts
// the auditor reports exactly that rule (collateral violations from the
// same corruption are allowed — one broken invariant often implies
// others — but the targeted rule must be among them).
func TestViolationRules(t *testing.T) {
	ms := unit.Time(1)
	cases := []struct {
		name   string
		build  func() Input
		mutate func(*Input)
		class  Class
		rule   string
	}{
		{"op-duration", twoStep, func(in *Input) {
			in.Schedule.Ops[0].End += ms
		}, Structure, "op-duration"},
		{"op-type", twoStep, func(in *Input) {
			in.Schedule.Ops[1].Comp = 0
		}, Structure, "op-type"},
		{"op-count", twoStep, func(in *Input) {
			in.Schedule.Ops = in.Schedule.Ops[:1]
		}, Structure, "op-count"},
		{"transport-early", twoStep, func(in *Input) {
			tr := &in.Schedule.Transports[0]
			tr.Depart -= sec(1)
			tr.Arrive -= sec(1)
		}, Precedence, "transport-early"},
		{"transport-late", twoStep, func(in *Input) {
			tr := &in.Schedule.Transports[0]
			tr.Depart += sec(1)
			tr.Arrive += sec(1)
		}, Precedence, "transport-late"},
		{"transport-duration", twoStep, func(in *Input) {
			in.Schedule.Transports[0].Arrive -= sec(1)
		}, Precedence, "transport-duration"},
		{"edge-unrealised", twoStep, func(in *Input) {
			in.Schedule.Transports = nil
		}, Precedence, "edge-unrealised"},
		{"transport-no-edge", twoStep, func(in *Input) {
			s := in.Schedule
			s.Transports = append(s.Transports, schedule.Transport{
				ID: 1, Producer: s.Ops[1].Op, Consumer: s.Ops[0].Op, From: 1, To: 0,
				Depart: sec(9), Arrive: sec(11),
				Fluid: slowFluid, WashTime: testWash.WashTime(slowFluid.D),
			})
		}, Precedence, "transport-no-edge"},
		{"op-overlap", inPlace, func(in *Input) {
			in.Schedule.Ops[1].Start -= sec(1)
			in.Schedule.Ops[1].End -= sec(1)
		}, Exclusivity, "op-overlap"},
		{"wash-overlap", twoStep, func(in *Input) {
			w := &in.Schedule.Washes[0]
			w.End -= w.Start - sec(2)
			w.Start = sec(2)
		}, Exclusivity, "wash-overlap"},
		{"wash-missing", twoStep, func(in *Input) {
			in.Schedule.Washes = in.Schedule.Washes[:1]
		}, Storage, "wash-missing"},
		{"wash-duplicate", twoStep, func(in *Input) {
			s := in.Schedule
			dup := s.Washes[1]
			dup.Start += sec(10)
			dup.End += sec(10)
			s.Washes = append(s.Washes, dup)
		}, Storage, "wash-duplicate"},
		{"wash-duration", twoStep, func(in *Input) {
			in.Schedule.Washes[1].End += ms
		}, Storage, "wash-duration"},
		{"wash-early", twoStep, func(in *Input) {
			in.Schedule.Washes[0].Start -= ms
			in.Schedule.Washes[0].End -= ms
		}, Storage, "wash-early"},
		{"wash-unexpected", inPlace, func(in *Input) {
			s := in.Schedule
			s.Washes = append(s.Washes, schedule.ComponentWash{
				Comp: 0, Residue: s.Ops[0].Op,
				Start: s.Washes[0].End, End: s.Washes[0].End + testWash.WashTime(fastFluid.D),
			})
		}, Storage, "wash-unexpected"},
		{"rebind-before-wash", chainRouted, func(in *Input) {
			in.Schedule.Ops[2].Start = sec(4.1)
			in.Schedule.Ops[2].End = sec(8.1)
		}, Storage, "rebind-before-wash"},
		{"transport-wash", twoStep, func(in *Input) {
			in.Schedule.Transports[0].WashTime += ms
		}, Storage, "transport-wash"},
		{"transport-fluid", twoStep, func(in *Input) {
			in.Schedule.Transports[0].Fluid = slowFluid
		}, Storage, "transport-fluid"},
		{"cache-missing", cached, func(in *Input) {
			in.Schedule.Caches = nil
		}, CacheCl, "cache-missing"},
		{"cache-unused", cached, func(in *Input) {
			in.Schedule.Transports[0].FromChannel = false
		}, CacheCl, "cache-unused"},
		{"cache-end", cached, func(in *Input) {
			in.Schedule.Caches[0].End += sec(1)
		}, CacheCl, "cache-end"},
		{"cache-early", cached, func(in *Input) {
			in.Schedule.Caches[0].Start -= sec(1)
			in.Schedule.Transports[0].CacheStart -= sec(1)
		}, CacheCl, "cache-early"},
		{"cache-span", cached, func(in *Input) {
			in.Schedule.Transports[0].Depart += sec(1)
			in.Schedule.Transports[0].Arrive += sec(1)
		}, CacheCl, "cache-span"},
		{"case1-missed", inPlace, func(in *Input) {
			in.Schedule.Ops[1].InPlace = false
		}, CaseI, "case1-missed"},
		{"case1-not-lowest", twoParents, func(in *Input) {
			in.Schedule.Ops[2].InPlaceParent = in.Schedule.Ops[0].Op
		}, CaseI, "case1-not-lowest"},
		{"placement-overlap", chainRouted, func(in *Input) {
			in.Placement.Rects[1].X = 1
		}, Placement, "overlap"},
		{"placement-bounds", chainRouted, func(in *Input) {
			in.Placement.Rects[1].X = 9
		}, Placement, "bounds"},
		{"footprint-size", chainRouted, func(in *Input) {
			in.Placement.Rects[0].W = 5
		}, Placement, "footprint-size"},
		{"route-missing", chainRouted, func(in *Input) {
			in.Routing.Routes = in.Routing.Routes[:1]
		}, Routing, "route-missing"},
		{"route-duplicate", chainRouted, func(in *Input) {
			in.Routing.Routes = append(in.Routing.Routes, in.Routing.Routes[0])
		}, Routing, "route-duplicate"},
		{"route-unknown", chainRouted, func(in *Input) {
			in.Routing.Routes[0].Task.ID = 99
		}, Routing, "route-unknown"},
		{"path-empty", chainRouted, func(in *Input) {
			in.Routing.Routes[0].Path = nil
		}, Routing, "path-empty"},
		{"path-connectivity", chainRouted, func(in *Input) {
			p := in.Routing.Routes[0].Path
			in.Routing.Routes[0].Path = append(p[:1:1], p[2:]...)
		}, Routing, "path-connectivity"},
		{"endpoint-src", chainRouted, func(in *Input) {
			in.Routing.Routes[0].Path = in.Routing.Routes[0].Path[2:]
		}, Routing, "endpoint-src"},
		{"path-blocked", chainRouted, func(in *Input) {
			in.Routing.Routes[0].Path[0] = route.Cell{X: 3, Y: 0}
		}, Routing, "path-blocked"},
		{"slot-conflict", chainRouted, func(in *Input) {
			in.Schedule.Transports[1].Depart = sec(5)
			in.Schedule.Transports[1].Arrive = sec(7)
		}, Slot, "slot-conflict"},
		{"makespan", twoStep, func(in *Input) {
			in.Schedule.Makespan += ms
		}, Metric, "makespan"},
		{"union-cells", chainRouted, func(in *Input) {
			in.Routing.UnionCells++
		}, Metric, "union-cells"},
		{"wash-sum", chainRouted, func(in *Input) {
			in.Routing.ChannelWash += ms
		}, Metric, "wash-sum"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			in := tc.build()
			tc.mutate(&in)
			rep := Audit(in)
			if rep.OK() {
				t.Fatalf("corruption %s not detected", tc.name)
			}
			if !hasRule(rep, tc.class, tc.rule) {
				t.Errorf("want %s/%s, got:\n%s", tc.class, tc.rule, rep)
			}
		})
	}
}

// TestBaselineSkipsCaseI: the comparison algorithm BA deliberately
// ignores resident fluids, so its solutions must not be held to the
// Case I policy — but every physical rule still applies.
func TestBaselineSkipsCaseI(t *testing.T) {
	in := inPlace()
	in.Baseline = true
	in.Schedule.Ops[1].InPlace = false
	rep := Audit(in)
	if rep.Count(CaseI) != 0 {
		t.Errorf("baseline solution held to Case I policy:\n%s", rep)
	}
	if !hasRule(rep, Precedence, "edge-unrealised") {
		t.Errorf("physical rules must still apply to baseline:\n%s", rep)
	}
}

// TestAuditEmptyInput: a nil or empty input is a structural violation,
// never a panic.
func TestAuditEmptyInput(t *testing.T) {
	if rep := Audit(Input{}); rep.OK() {
		t.Error("empty input audited clean")
	}
	in := twoStep()
	in.Comps = nil
	if rep := Audit(in); rep.OK() {
		t.Error("solution without components audited clean")
	}
	in = twoStep()
	in.Routing = &route.Result{}
	in.Placement = nil
	if rep := Audit(in); !hasRule(rep, Structure, "input") {
		t.Error("routing without placement not reported")
	}
}
