// Package viz renders synthesis results as plain-text diagrams: the chip
// layout with placed components and fabricated flow channels (in the
// spirit of the paper's Fig. 4), and a per-component Gantt chart of the
// schedule (in the spirit of Fig. 3).
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// Layout draws the placement and the union of routed flow channels.
// Component cells show the component's type letter, channel cells '+',
// free cells '.'.
func Layout(sol *core.Solution) string {
	w, h := sol.Placement.W, sol.Placement.H
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", w))
	}
	for _, rt := range sol.Routing.Routes {
		for _, c := range rt.Path {
			if c.Y >= 0 && c.Y < h && c.X >= 0 && c.X < w {
				grid[c.Y][c.X] = '+'
			}
		}
	}
	for i, r := range sol.Placement.Rects {
		letter := sol.Comps[i].Kind.Name[0]
		for y := r.Y; y < r.Y+r.H && y < h; y++ {
			for x := r.X; x < r.X+r.W && x < w; x++ {
				grid[y][x] = letter
			}
		}
		// Index digit in the top-left corner (single digit only).
		if sol.Comps[i].Index < 10 && r.Y < h && r.X+1 < w {
			grid[r.Y][r.X+1] = byte('0' + sol.Comps[i].Index)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chip %dx%d cells (pitch %v), %d components, %d channel cells\n",
		w, h, sol.Routing.Pitch, len(sol.Comps), sol.Routing.UnionCells)
	for y := 0; y < h; y++ {
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	return b.String()
}

// Gantt draws the schedule as one row per component: operation blocks
// ('#', labelled where space allows), component washes '~', idle '.'.
func Gantt(r *schedule.Result) string {
	const width = 86
	if r.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	col := func(t unit.Time) int {
		c := int(int64(t) * int64(width) / int64(r.Makespan))
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schedule of %q: makespan %v, U_r %.1f%%\n",
		r.Assay.Name(), r.Makespan, 100*r.Utilization())
	type rowOp struct {
		start, end unit.Time
		name       string
	}
	rows := make([][]rowOp, len(r.Comps))
	for _, bo := range r.Ops {
		rows[bo.Comp] = append(rows[bo.Comp], rowOp{bo.Start, bo.End, r.Assay.Op(bo.Op).Name})
	}
	washes := make([][]schedule.ComponentWash, len(r.Comps))
	for _, w := range r.Washes {
		washes[w.Comp] = append(washes[w.Comp], w)
	}
	for c := range r.Comps {
		line := []byte(strings.Repeat(".", width))
		for _, w := range washes[c] {
			for i := col(w.Start); i < col(w.End) && i < width; i++ {
				line[i] = '~'
			}
		}
		ops := rows[c]
		sort.Slice(ops, func(i, j int) bool { return ops[i].start < ops[j].start })
		for _, op := range ops {
			s, e := col(op.start), col(op.end)
			if e <= s {
				e = s + 1
			}
			for i := s; i < e && i < width; i++ {
				line[i] = '#'
			}
			// Inline label when it fits.
			if e-s > len(op.name)+1 && s+len(op.name) < width {
				copy(line[s+1:], op.name)
			}
		}
		fmt.Fprintf(&b, "%-10s |%s|\n", r.Comps[c].Name(), line)
	}
	fmt.Fprintf(&b, "%-10s  0%s%v\n", "", strings.Repeat(" ", width-len(r.Makespan.String())), r.Makespan)
	fmt.Fprintf(&b, "legend: # operation  ~ wash  . idle\n")
	return b.String()
}

// Congestion renders a per-cell channel-usage heatmap: '.' for untouched
// cells, digits for 1-9 routed tasks through a cell, '+' beyond, and the
// component type letter for blocked cells. It highlights where the
// router concentrates shared channel segments.
func Congestion(sol *core.Solution) string {
	w, h := sol.Placement.W, sol.Placement.H
	counts := make([]int, w*h)
	for _, rt := range sol.Routing.Routes {
		for _, c := range rt.Path {
			if c.X >= 0 && c.X < w && c.Y >= 0 && c.Y < h {
				counts[c.Y*w+c.X]++
			}
		}
	}
	grid := make([][]byte, h)
	maxUses := 0
	for y := range grid {
		row := make([]byte, w)
		for x := range row {
			n := counts[y*w+x]
			switch {
			case n == 0:
				row[x] = '.'
			case n <= 9:
				row[x] = byte('0' + n)
			default:
				row[x] = '+'
			}
			if n > maxUses {
				maxUses = n
			}
		}
		grid[y] = row
	}
	for i, r := range sol.Placement.Rects {
		letter := sol.Comps[i].Kind.Name[0]
		for y := r.Y; y < r.Y+r.H && y < h; y++ {
			for x := r.X; x < r.X+r.W && x < w; x++ {
				grid[y][x] = letter
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "channel congestion (max %d tasks through one cell)\n", maxUses)
	for y := 0; y < h; y++ {
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	return b.String()
}
