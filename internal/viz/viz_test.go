package viz

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/schedule"
)

func solve(t *testing.T, name string) *core.Solution {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Place.Imax = 30
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestLayoutContainsComponentsAndChannels(t *testing.T) {
	sol := solve(t, "IVD")
	out := Layout(sol)
	if !strings.Contains(out, "M") {
		t.Error("layout missing mixers")
	}
	if !strings.Contains(out, "D") {
		t.Error("layout missing detectors")
	}
	if len(sol.Routing.Routes) > 0 && !strings.Contains(out, "+") {
		t.Error("layout missing channels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != sol.Placement.H+1 {
		t.Errorf("layout rows = %d, want header + %d", len(lines), sol.Placement.H)
	}
	for i, l := range lines[1:] {
		if len(l) != sol.Placement.W {
			t.Errorf("row %d width %d, want %d", i, len(l), sol.Placement.W)
		}
	}
}

func TestLayoutComponentAreaMatches(t *testing.T) {
	sol := solve(t, "PCR")
	out := Layout(sol)
	// Count mixer cells on the body only (the header also has digits):
	// 3 mixers × 4×3 footprint, one cell of each showing its index digit.
	body := out[strings.Index(out, "\n")+1:]
	mCells := strings.Count(body, "M")
	digits := 0
	for _, d := range "123" {
		digits += strings.Count(body, string(d))
	}
	if mCells+digits != 3*4*3 {
		t.Errorf("mixer cells+digits = %d, want 36", mCells+digits)
	}
}

func TestGanttShape(t *testing.T) {
	sol := solve(t, "PCR")
	out := Gantt(sol.Schedule)
	for _, want := range []string{"Mixer1", "Mixer2", "Mixer3", "#", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "makespan") {
		t.Error("gantt missing makespan header")
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	// A schedule value with zero makespan must not panic.
	out := Gantt(&schedule.Result{})
	if !strings.Contains(out, "empty") {
		t.Errorf("empty schedule rendering = %q", out)
	}
}

func TestCongestionHeatmap(t *testing.T) {
	sol := solve(t, "CPA")
	out := Congestion(sol)
	if !strings.Contains(out, "congestion") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != sol.Placement.H+1 {
		t.Errorf("rows = %d, want %d", len(lines), sol.Placement.H+1)
	}
	// With transports present there must be at least one used cell.
	if len(sol.Routing.Routes) > 0 {
		found := false
		for _, l := range lines[1:] {
			if strings.ContainsAny(l, "123456789+") {
				found = true
				break
			}
		}
		if !found {
			t.Error("no used cells in heatmap")
		}
	}
}
