// Package washplan derives an explicit channel-washing plan from a routed
// solution and audits the paper's central washing assumption.
//
// The synthesis flow treats channel washing the way the paper does: wash
// time is minimized through the router's cell weights and accounted as a
// cost (Fig. 9), but not scheduled as hard time windows (the scheduler's
// constant-t_c abstraction cannot see individual channel segments). This
// package closes the loop after the fact: for every routed task it plans
// a buffer flush of the task's path right after its occupancy ends and
// checks whether the flush completes before any cell of the path is
// reused by a different fluid. The result quantifies how often the
// weight-driven washing assumption holds ("on-time" flushes) and how
// severe the violations are (lateness), per solution.
package washplan

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/unit"
)

// Flush is one planned buffer flush: cleaning the residue a task left
// along its path.
type Flush struct {
	// Task is the routed transportation task whose residue is removed.
	Task int
	// Start is when the flush begins (the task's occupancy end).
	Start unit.Time
	// Duration is the residue's wash time.
	Duration unit.Time
	// Deadline is the earliest next use of any path cell by a different
	// fluid (unit.Forever when the path is never reused).
	Deadline unit.Time
	// Late reports that the flush cannot finish before the deadline.
	Late bool
	// Lateness is max(0, Start+Duration-Deadline).
	Lateness unit.Time
}

// Plan is the complete washing plan of a solution.
type Plan struct {
	Flushes []Flush
	// OnTime and Late count flushes meeting/missing their deadline.
	OnTime, Late int
	// MaxLateness is the worst deadline miss.
	MaxLateness unit.Time
	// TotalWash is the summed flush time (a lower-variance cousin of the
	// Fig. 9 metric: one flush per task rather than per cell use).
	TotalWash unit.Time
}

// OnTimeFraction returns the share of flushes completing before their
// channel is needed again (1.0 when there are no flushes).
func (p *Plan) OnTimeFraction() float64 {
	if len(p.Flushes) == 0 {
		return 1
	}
	return float64(p.OnTime) / float64(len(p.Flushes))
}

// Build derives the washing plan of a solution.
func Build(sol *core.Solution) (*Plan, error) {
	if sol == nil || sol.Routing == nil {
		return nil, fmt.Errorf("washplan: nil solution")
	}
	// Per cell: the uses (start time, fluid) sorted by time.
	type use struct {
		start unit.Time
		end   unit.Time
		fluid string
	}
	cellUses := map[route.Cell][]use{}
	for _, rt := range sol.Routing.Routes {
		w := rt.Task.HoldWindow()
		for _, c := range rt.Path {
			cellUses[c] = append(cellUses[c], use{start: w.Start, end: w.End, fluid: rt.Task.Fluid.Name})
		}
	}
	for c := range cellUses {
		us := cellUses[c]
		sort.Slice(us, func(i, j int) bool { return us[i].start < us[j].start })
		cellUses[c] = us
	}

	plan := &Plan{}
	for _, rt := range sol.Routing.Routes {
		w := rt.Task.HoldWindow()
		f := Flush{
			Task:     rt.Task.ID,
			Start:    w.End,
			Duration: rt.Task.Wash,
			Deadline: unit.Forever,
		}
		// Deadline: the earliest next use by a different fluid across the
		// path's cells.
		for _, c := range rt.Path {
			for _, u := range cellUses[c] {
				if u.start >= w.End && u.fluid != rt.Task.Fluid.Name {
					if u.start < f.Deadline {
						f.Deadline = u.start
					}
					break
				}
			}
		}
		if f.Start+f.Duration > f.Deadline {
			f.Late = true
			f.Lateness = f.Start + f.Duration - f.Deadline
			plan.Late++
			if f.Lateness > plan.MaxLateness {
				plan.MaxLateness = f.Lateness
			}
		} else {
			plan.OnTime++
		}
		plan.TotalWash += f.Duration
		plan.Flushes = append(plan.Flushes, f)
	}
	sort.Slice(plan.Flushes, func(i, j int) bool {
		if plan.Flushes[i].Start != plan.Flushes[j].Start {
			return plan.Flushes[i].Start < plan.Flushes[j].Start
		}
		return plan.Flushes[i].Task < plan.Flushes[j].Task
	})
	return plan, nil
}
