package washplan

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/unit"
)

func solve(t *testing.T, name string, baseline bool) *core.Solution {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Place.Imax = 40
	var sol *core.Solution
	if baseline {
		sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, o)
	} else {
		sol, err = core.Synthesize(bm.Graph, bm.Alloc, o)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestBuildBasics(t *testing.T) {
	sol := solve(t, "CPA", false)
	plan, err := Build(sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Flushes) != len(sol.Routing.Routes) {
		t.Fatalf("flushes = %d, want one per routed task %d",
			len(plan.Flushes), len(sol.Routing.Routes))
	}
	if plan.OnTime+plan.Late != len(plan.Flushes) {
		t.Error("on-time + late != total")
	}
	var total unit.Time
	for i, f := range plan.Flushes {
		total += f.Duration
		if f.Duration < 0 {
			t.Errorf("flush %d negative duration", f.Task)
		}
		if f.Late && f.Lateness <= 0 {
			t.Errorf("late flush %d without lateness", f.Task)
		}
		if !f.Late && f.Lateness != 0 {
			t.Errorf("on-time flush %d with lateness", f.Task)
		}
		if i > 0 && f.Start < plan.Flushes[i-1].Start {
			t.Error("flushes not time-sorted")
		}
	}
	if total != plan.TotalWash {
		t.Errorf("TotalWash %v != sum %v", plan.TotalWash, total)
	}
	frac := plan.OnTimeFraction()
	if frac < 0 || frac > 1 {
		t.Errorf("OnTimeFraction = %v", frac)
	}
	t.Logf("CPA wash plan: %d flushes, %.0f%% on time, max lateness %v",
		len(plan.Flushes), 100*frac, plan.MaxLateness)
}

func TestOnTimeFractionReasonableOnBenchmarks(t *testing.T) {
	// The weight-guided router should keep the washing assumption mostly
	// honest: across the benchmark suite, a clear majority of flushes
	// must complete before their channel is reused.
	var onTime, all int
	for _, bm := range benchdata.All() {
		sol := solve(t, bm.Name, false)
		plan, err := Build(sol)
		if err != nil {
			t.Fatal(err)
		}
		onTime += plan.OnTime
		all += len(plan.Flushes)
	}
	if all == 0 {
		t.Skip("no flushes")
	}
	frac := float64(onTime) / float64(all)
	t.Logf("suite-wide on-time wash fraction: %.1f%% (%d of %d)", 100*frac, onTime, all)
	if frac < 0.5 {
		t.Errorf("washing assumption violated too often: only %.1f%% on time", 100*frac)
	}
}

func TestNeverReusedPathsAreOnTime(t *testing.T) {
	// PCR has few transports over disjoint windows; flushes whose paths
	// are never reused must have an infinite deadline and be on time.
	sol := solve(t, "PCR", false)
	plan, err := Build(sol)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range plan.Flushes {
		if f.Deadline == unit.Forever && f.Late {
			t.Errorf("flush %d late despite no future use", f.Task)
		}
	}
}

func TestBuildNil(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("nil solution accepted")
	}
}
