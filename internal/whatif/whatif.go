// Package whatif performs failure what-if analysis on a synthesized
// design: PDMS biochips routinely ship with fabrication defects that
// disable individual components, so a practical flow must know how a
// bioassay degrades when any single allocated component is lost. For
// each component the analysis removes one instance of its type from the
// allocation, re-runs the DCSA synthesis schedule, and reports the new
// completion time (or infeasibility when the component was the last of a
// required type).
package whatif

import (
	"fmt"
	"sort"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// Impact is the effect of losing one component of a given type.
type Impact struct {
	// Type is the failed component's type.
	Type assay.OpType
	// Feasible reports whether the assay can still run.
	Feasible bool
	// Makespan is the degraded completion time (when feasible).
	Makespan unit.Time
	// DeltaPct is the relative slowdown versus the healthy chip, in
	// percent (0 when the loss is absorbed entirely).
	DeltaPct float64
}

// Analysis is a complete single-failure study.
type Analysis struct {
	// Baseline is the healthy completion time.
	Baseline unit.Time
	// Impacts holds one entry per component type present in the
	// allocation, ordered by type.
	Impacts []Impact
	// WorstDeltaPct is the largest feasible slowdown.
	WorstDeltaPct float64
	// SinglePoints lists the types whose loss makes the assay
	// infeasible (single points of failure).
	SinglePoints []assay.OpType
}

// SingleFailures analyzes the loss of one component of each allocated
// type under the DCSA scheduler.
func SingleFailures(g *assay.Graph, alloc chip.Allocation, opts schedule.Options) (Analysis, error) {
	var a Analysis
	if g == nil {
		return a, fmt.Errorf("whatif: nil assay")
	}
	if err := alloc.Covers(g); err != nil {
		return a, err
	}
	healthy, err := schedule.Schedule(g, alloc.Instantiate(), opts)
	if err != nil {
		return a, err
	}
	a.Baseline = healthy.Makespan

	need := g.CountByType()
	for t := 0; t < assay.NumOpTypes; t++ {
		if alloc[t] == 0 {
			continue
		}
		degraded := alloc
		degraded[t]--
		imp := Impact{Type: assay.OpType(t)}
		if need[t] > 0 && degraded[t] == 0 {
			imp.Feasible = false
			a.SinglePoints = append(a.SinglePoints, assay.OpType(t))
		} else {
			res, err := schedule.Schedule(g, degraded.Instantiate(), opts)
			if err != nil {
				return a, fmt.Errorf("whatif: degraded allocation %v: %w", degraded, err)
			}
			imp.Feasible = true
			imp.Makespan = res.Makespan
			imp.DeltaPct = 100 * float64(res.Makespan-healthy.Makespan) / float64(healthy.Makespan)
			if imp.DeltaPct > a.WorstDeltaPct {
				a.WorstDeltaPct = imp.DeltaPct
			}
		}
		a.Impacts = append(a.Impacts, imp)
	}
	sort.Slice(a.Impacts, func(i, j int) bool { return a.Impacts[i].Type < a.Impacts[j].Type })
	return a, nil
}
