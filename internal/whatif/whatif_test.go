package whatif

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/schedule"
)

func TestSingleFailuresOnCPA(t *testing.T) {
	bm := benchdata.CPA() // (8,0,0,2)
	a, err := SingleFailures(bm.Graph, bm.Alloc, schedule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Baseline <= 0 {
		t.Fatal("no baseline")
	}
	// Two component types allocated → two impacts.
	if len(a.Impacts) != 2 {
		t.Fatalf("impacts = %d, want 2", len(a.Impacts))
	}
	for _, imp := range a.Impacts {
		if !imp.Feasible {
			t.Errorf("losing one %v should stay feasible on CPA", imp.Type)
			continue
		}
		if imp.Makespan < a.Baseline {
			t.Errorf("losing a %v sped the assay up: %v < %v", imp.Type, imp.Makespan, a.Baseline)
		}
		if imp.DeltaPct < 0 {
			t.Errorf("negative slowdown %v", imp.DeltaPct)
		}
	}
	if len(a.SinglePoints) != 0 {
		t.Errorf("CPA has no single points of failure, got %v", a.SinglePoints)
	}
	t.Logf("CPA failures: baseline %v, worst slowdown %.1f%%", a.Baseline, a.WorstDeltaPct)
}

func TestSinglePointOfFailureDetected(t *testing.T) {
	// IVD on (1,0,0,1): losing either component kills the assay.
	bm := benchdata.IVD()
	a, err := SingleFailures(bm.Graph, chip.Allocation{1, 0, 0, 1}, schedule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SinglePoints) != 2 {
		t.Errorf("single points = %v, want mix and detect", a.SinglePoints)
	}
	for _, imp := range a.Impacts {
		if imp.Feasible {
			t.Errorf("losing the only %v reported feasible", imp.Type)
		}
	}
}

func TestUnusedTypeLossIsFree(t *testing.T) {
	// PCR (all mixes) with a spare heater allocated: losing the heater
	// changes nothing.
	bm := benchdata.PCR()
	alloc := bm.Alloc
	alloc[assay.Heat] = 1
	a, err := SingleFailures(bm.Graph, alloc, schedule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range a.Impacts {
		if imp.Type == assay.Heat {
			if !imp.Feasible || imp.DeltaPct != 0 {
				t.Errorf("losing an unused heater must be free: %+v", imp)
			}
		}
	}
}

func TestSingleFailuresRejectsBadInputs(t *testing.T) {
	if _, err := SingleFailures(nil, chip.Allocation{1, 0, 0, 0}, schedule.DefaultOptions()); err == nil {
		t.Error("nil assay accepted")
	}
	bm := benchdata.PCR()
	if _, err := SingleFailures(bm.Graph, chip.Allocation{0, 1, 0, 0}, schedule.DefaultOptions()); err == nil {
		t.Error("non-covering allocation accepted")
	}
}
