// Multicore determinism regression: the parallel-tempering placer and
// the concurrent wave router are opt-in performance modes that must
// never change WHAT is computed, only how fast. These tests pin that
// property against the golden fingerprints and across worker-pool sizes.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
)

// TestParallelRoutingMatchesSequential re-synthesizes all 14 pinned
// benchmark solutions with the concurrent slot-disjoint router enabled
// and requires byte-identical results: every speculative path the wave
// router accepts must be the exact path the sequential router would have
// committed. Several worker counts are exercised because wave width (and
// therefore the speculation/validation split) depends on Workers.
func TestParallelRoutingMatchesSequential(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		opts := fingerprintOpts()
		opts.Route.Workers = workers
		for _, bm := range benchdata.All() {
			for _, algo := range []string{"ours", "BA"} {
				t.Run(fmt.Sprintf("%s/%s/w%d", bm.Name, algo, workers), func(t *testing.T) {
					var sol *core.Solution
					var err error
					if algo == "ours" {
						sol, err = core.Synthesize(bm.Graph, bm.Alloc, opts)
					} else {
						sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, opts)
					}
					if err != nil {
						t.Fatalf("synthesize: %v", err)
					}
					got := solutionFingerprint(sol)
					want := goldenFingerprints[bm.Name+"/"+algo]
					if got != want {
						t.Fatalf("parallel routing diverged from sequential:\n got %s\nwant %s", got, want)
					}
				})
			}
		}
	}
}

// TestTemperingEndToEndDeterminism pins that a tempered synthesis is
// reproducible run-to-run (the replica fan-out and swap schedule are
// scheduling-independent) and survives a full solution audit.
func TestTemperingEndToEndDeterminism(t *testing.T) {
	bm, err := benchdata.ByName("Synthetic2")
	if err != nil {
		t.Fatal(err)
	}
	opts := fingerprintOpts()
	opts.Tempering = 4
	opts.Verify = true
	var fp string
	for run := 0; run < 3; run++ {
		sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := solutionFingerprint(sol)
		if run == 0 {
			fp = got
		} else if got != fp {
			t.Fatalf("run %d: tempered synthesis not reproducible: %s vs %s", run, got, fp)
		}
	}
}

// TestTemperingPreservesDefaultPath double-checks the guard: Tempering=0
// and Tempering=1 must reproduce the pinned default-path fingerprint.
func TestTemperingPreservesDefaultPath(t *testing.T) {
	bm, err := benchdata.ByName("Synthetic1")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1} {
		opts := fingerprintOpts()
		opts.Tempering = k
		sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := solutionFingerprint(sol), goldenFingerprints["Synthetic1/ours"]; got != want {
			t.Fatalf("Tempering=%d perturbed the default path: %s != %s", k, got, want)
		}
	}
}
