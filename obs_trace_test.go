// Observability regression: tracing must be a pure observer. A synthesis
// with a tracer attached must reproduce every pinned golden fingerprint
// byte-for-byte — the obs hooks sit outside the pipeline's RNG and
// floating-point paths, so enabling them cannot perturb a solution. The
// second test pins the trace contract itself: mfsyn-style tracing emits a
// valid Chrome trace-event document with balanced schedule/place/route
// spans and the algorithm counter events the exporters rely on.
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestFingerprintsUnchangedByTracing runs every benchmark × algorithm
// with a collecting tracer installed and checks the golden fingerprints
// still match. Together with TestSolutionFingerprints (which runs the
// same inputs untraced) this pins "tracing on == tracing off".
func TestFingerprintsUnchangedByTracing(t *testing.T) {
	for _, bm := range benchdata.All() {
		for _, algo := range []string{"ours", "BA"} {
			key := bm.Name + "/" + algo
			want, ok := goldenFingerprints[key]
			if !ok || want == "" {
				continue
			}
			t.Run(key, func(t *testing.T) {
				var c obs.Collect
				ctx := obs.Into(context.Background(), obs.New(&c))
				// A request-level span recorder rides the same context in
				// production (the serving layer attaches it before calling
				// into core). The pipeline must never write to it: span
				// recording is strictly a serving-layer concern, so its
				// presence cannot perturb the synthesis either.
				rec := obs.NewSpanRecorder("t-test", "", "test", "fp")
				ctx = obs.WithSpans(ctx, rec)
				var sol *core.Solution
				var err error
				if algo == "ours" {
					sol, err = core.SynthesizeContext(ctx, bm.Graph, bm.Alloc, fingerprintOpts())
				} else {
					sol, err = core.SynthesizeBaselineContext(ctx, bm.Graph, bm.Alloc, fingerprintOpts())
				}
				if err != nil {
					t.Fatal(err)
				}
				if got := solutionFingerprint(sol); got != want {
					t.Errorf("tracing perturbed the solution:\n got %s\nwant %s", got, want)
				}
				// The tracer must actually have seen the pipeline run —
				// a silently detached tracer would make this test vacuous.
				if c.Count(obs.CatPipeline, "synthesize") != 2 {
					t.Errorf("synthesize span not traced: %d events", c.Count(obs.CatPipeline, "synthesize"))
				}
				if algo == "ours" && c.Count(obs.CatPlace, "sa.step") == 0 {
					t.Error("no sa.step events traced")
				}
				if n := rec.Len(); n != 0 {
					t.Errorf("core pipeline wrote %d spans to the request recorder; span recording must stay at the serving layer", n)
				}
			})
		}
	}
}

// TestChromeTraceEndToEnd drives the exact path `mfsyn -trace` uses: a
// full synthesis streamed into a ChromeSink, then validates the document
// structure a trace viewer depends on.
func TestChromeTraceEndToEnd(t *testing.T) {
	bm, err := benchdata.ByName("CPA")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	ctx := obs.Into(context.Background(), obs.New(sink))
	if _, err := core.SynthesizeContext(ctx, bm.Graph, bm.Alloc, fingerprintOpts()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	begins := map[string]int{}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Name]++
		switch e.Ph {
		case "B":
			begins[e.Cat+"/"+e.Name]++
		case "E":
			begins[e.Cat+"/"+e.Name]--
		}
	}
	// Every span balanced, and all three stage spans present.
	for span, open := range begins {
		if open != 0 {
			t.Errorf("span %s unbalanced: %+d", span, open)
		}
	}
	for _, span := range []string{"synthesize", "schedule", "place", "route"} {
		if counts[span] == 0 {
			t.Errorf("stage span %q missing from trace", span)
		}
	}
	// Algorithm telemetry present: anneal counter samples and per-task
	// routing events.
	if counts["sa.step"] == 0 {
		t.Error("no sa.step counter events in trace")
	}
	if counts["route.task"] == 0 {
		t.Error("no route.task events in trace")
	}
	if counts["bind.case1"]+counts["bind.case2"] == 0 {
		t.Error("no binding events in trace")
	}
	if counts["schedule.stats"] != 1 {
		t.Errorf("schedule.stats emitted %d times, want 1", counts["schedule.stats"])
	}
}
