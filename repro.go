// Package repro is the public API of this reproduction of "Physical
// Synthesis of Flow-Based Microfluidic Biochips Considering Distributed
// Channel Storage" (Chen et al., DATE 2019).
//
// It re-exports the building blocks needed by a downstream user:
//
//   - describing a bioassay as a sequencing graph (NewAssay, OpType,
//     Fluid, DecodeAssay/EncodeAssay);
//   - allocating on-chip components (Allocation, ParseAllocation);
//   - running the paper's top-down DCSA-aware physical synthesis
//     (Synthesize) or the baseline it is compared against
//     (SynthesizeBaseline), both returning a full Solution with schedule,
//     placement, routing and the Table I / Fig. 8 / Fig. 9 metrics;
//   - verifying a solution by independent replay (Replay);
//   - regenerating the paper's evaluation (RunComparison, TableI, Fig8,
//     Fig9) on the built-in benchmark suite (Benchmarks);
//   - rendering text diagrams of the result (Layout, Gantt).
//
// See examples/ for runnable end-to-end programs.
package repro

import (
	"context"
	"io"

	"repro/internal/archsyn"
	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/bound"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fluid"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/unit"
	"repro/internal/valve"
	"repro/internal/verify"
	"repro/internal/viz"
	"repro/internal/washplan"
	"repro/internal/whatif"
)

// Core synthesis types.
type (
	// Options bundles every stage's parameters; start from DefaultOptions.
	Options = core.Options
	// Solution is a complete synthesis result (schedule + placement +
	// routing + metrics).
	Solution = core.Solution
	// Metrics are the evaluation quantities of Table I and Figs. 8-9.
	Metrics = core.Metrics
)

// Bioassay description types.
type (
	// Assay is a validated sequencing graph G(O,E).
	Assay = assay.Graph
	// AssayBuilder accumulates operations and dependencies.
	AssayBuilder = assay.Builder
	// OpID identifies an operation within an assay.
	OpID = assay.OpID
	// OpType is the resource class of an operation.
	OpType = assay.OpType
	// Fluid is a sample with its diffusion coefficient.
	Fluid = fluid.Fluid
	// Time is a fixed-point duration/instant in milliseconds.
	Time = unit.Time
	// Diffusion is a diffusion coefficient in cm²/s.
	Diffusion = unit.Diffusion
)

// Chip resource types.
type (
	// Allocation counts allocated components per type, in Table I's
	// (Mixers, Heaters, Filters, Detectors) order.
	Allocation = chip.Allocation
	// Component is an allocated component instance.
	Component = chip.Component
)

// Benchmark couples an assay with its Table I component allocation.
type Benchmark = benchdata.Benchmark

// ComparisonRow holds ours-vs-baseline metrics for one benchmark.
type ComparisonRow = report.Row

// Replay is a verified discrete event trace of a Solution.
type Replay = sim.Replay

// AuditReport is the structured outcome of the independent constraint
// audit (see Audit).
type AuditReport = verify.Report

// ControlAnalysis summarises the control-layer cost (valve count and
// Hamming-distance switching) implied by a routed solution — the paper's
// future-work direction.
type ControlAnalysis = valve.Analysis

// The operation types.
const (
	Mix    = assay.Mix
	Heat   = assay.Heat
	Filter = assay.Filter
	Detect = assay.Detect
)

// DefaultOptions returns the paper's published experimental parameters.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewAssay starts building a bioassay with the given name.
func NewAssay(name string) *AssayBuilder { return assay.NewBuilder(name) }

// DecodeAssay reads an assay from its JSON representation.
func DecodeAssay(r io.Reader) (*Assay, error) { return assay.Decode(r) }

// EncodeAssay writes an assay as JSON.
func EncodeAssay(w io.Writer, g *Assay) error { return assay.Encode(w, g) }

// ParseAllocation parses an allocation tuple such as "(3,0,0,2)".
func ParseAllocation(s string) (Allocation, error) { return chip.ParseAllocation(s) }

// MinimalAllocation returns the smallest allocation covering the assay.
func MinimalAllocation(g *Assay) Allocation { return chip.MinimalAllocation(g) }

// Seconds converts fractional seconds into the library's Time unit.
func Seconds(s float64) Time { return unit.Seconds(s) }

// Synthesize runs the proposed DCSA-aware top-down synthesis flow.
func Synthesize(g *Assay, alloc Allocation, opts Options) (*Solution, error) {
	return core.Synthesize(g, alloc, opts)
}

// SynthesizeBaseline runs the baseline algorithm BA of Section V.
func SynthesizeBaseline(g *Assay, alloc Allocation, opts Options) (*Solution, error) {
	return core.SynthesizeBaseline(g, alloc, opts)
}

// SynthesizeContext is Synthesize with cancellation and deadlines: the
// pipeline polls ctx between scheduling commits, annealing temperature
// steps and per-task routings, and aborts promptly once ctx is done. An
// uncancelled context produces byte-identical output to Synthesize.
func SynthesizeContext(ctx context.Context, g *Assay, alloc Allocation, opts Options) (*Solution, error) {
	return core.SynthesizeContext(ctx, g, alloc, opts)
}

// SynthesizeBaselineContext is SynthesizeBaseline with cancellation.
func SynthesizeBaselineContext(ctx context.Context, g *Assay, alloc Allocation, opts Options) (*Solution, error) {
	return core.SynthesizeBaselineContext(ctx, g, alloc, opts)
}

// ScheduleDedicated schedules an assay on a conventional chip whose
// intermediate fluids are cached in a dedicated storage unit with the
// given capacity and a single multiplexed port — the architecture the
// paper's introduction argues DCSA outperforms. Only the scheduling stage
// applies (the comparison isolates the storage architecture).
func ScheduleDedicated(g *Assay, alloc Allocation, opts Options, capacity int) (Time, error) {
	res, err := schedule.ScheduleDedicated(g, alloc.Instantiate(),
		schedule.DedicatedOptions{Options: opts.Schedule, Capacity: capacity})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// Verify replays a solution and re-checks every physical invariant.
func Verify(sol *Solution) (*Replay, error) { return sim.Run(sol) }

// Audit re-derives every constraint of the DCSA formulation against the
// solution with the independent auditor (internal/verify) — sequencing-
// graph precedence, component exclusivity, storage legality, placement
// geometry and the Eq. 5 time-slot routing condition — and returns a
// structured report of all violations found. A clean report's Err() is
// nil.
func Audit(sol *Solution) *AuditReport { return core.Audit(sol) }

// Benchmarks returns the seven Table I benchmarks.
func Benchmarks() []Benchmark { return benchdata.All() }

// BenchmarkByName returns one Table I benchmark by name.
func BenchmarkByName(name string) (Benchmark, error) { return benchdata.ByName(name) }

// GenerateSyntheticAssay builds a random layered bioassay with the given
// size, allocation-proportional type mix and seed.
func GenerateSyntheticAssay(name string, ops int, alloc Allocation, seed uint64) *Assay {
	return benchdata.GenerateSynthetic(name, ops, alloc, seed)
}

// RunComparison synthesizes each benchmark with both algorithms on a
// worker pool sized to the available CPUs. The rows are the same as a
// sequential run: each synthesis is deterministic in its inputs and the
// results are ordered by benchmark, not by completion.
func RunComparison(benches []Benchmark, opts Options) ([]ComparisonRow, error) {
	return report.Run(benches, opts)
}

// RunComparisonWorkers is RunComparison with an explicit worker-pool
// size (1 recovers the sequential run, with identical output).
func RunComparisonWorkers(benches []Benchmark, opts Options, workers int) ([]ComparisonRow, error) {
	return report.RunWorkers(benches, opts, workers)
}

// TableI renders comparison rows in the layout of the paper's Table I.
func TableI(rows []ComparisonRow) string { return report.TableI(rows) }

// Fig8 renders the total channel cache time comparison (paper Fig. 8).
func Fig8(rows []ComparisonRow) string { return report.Fig(rows, report.Fig8CacheTime) }

// Fig9 renders the total channel wash time comparison (paper Fig. 9).
func Fig9(rows []ComparisonRow) string { return report.Fig(rows, report.Fig9WashTime) }

// ComparisonCSV renders comparison rows as CSV for plotting.
func ComparisonCSV(rows []ComparisonRow) string { return report.CSV(rows) }

// ComparisonMarkdown renders comparison rows as a markdown table.
func ComparisonMarkdown(rows []ComparisonRow) string { return report.Markdown(rows) }

// Layout renders the placed-and-routed chip as a text diagram.
func Layout(sol *Solution) string { return viz.Layout(sol) }

// Gantt renders a solution's schedule as a per-component text timeline.
func Gantt(sol *Solution) string { return viz.Gantt(sol.Schedule) }

// ScheduleOf exposes the binding-and-scheduling stage result.
func ScheduleOf(sol *Solution) *schedule.Result { return sol.Schedule }

// ControlLayer analyzes the control-layer complexity of a solution:
// valves needed and total valve switching, before and after the
// Hamming-distance-based reordering of simultaneous tasks.
func ControlLayer(sol *Solution) ControlAnalysis { return valve.Analyze(sol) }

// PinPlan is a pattern-sharing control-pin assignment for channel valves.
type PinPlan = valve.PinPlan

// PlanControlPins groups valves with identical actuation sequences onto
// shared control pins and reports pin count and switching.
func PlanControlPins(sol *Solution) PinPlan { return valve.PlanPins(sol) }

// FailureAnalysis is a single-component-failure what-if study.
type FailureAnalysis = whatif.Analysis

// AnalyzeFailures reports how the assay's completion time degrades when
// one component of each allocated type fails, and which types are single
// points of failure.
func AnalyzeFailures(g *Assay, alloc Allocation, opts Options) (FailureAnalysis, error) {
	return whatif.SingleFailures(g, alloc, opts.Schedule)
}

// CongestionMap renders a per-cell channel-usage heatmap of the routed
// solution.
func CongestionMap(sol *Solution) string { return viz.Congestion(sol) }

// WashRouting is the physical wash-buffer infrastructure of a solution.
type WashRouting = route.WashRouting

// RouteWashes plans a buffer flush path (inlet → contaminated segment →
// waste outlet) for every transportation task and reports the extra
// channel fabric washing requires.
func RouteWashes(sol *Solution) (*WashRouting, error) {
	return route.RouteWash(sol.Routing, sol.Comps, sol.Placement, sol.Opts.Route)
}

// ScheduleBounds computes lower bounds on the assay completion time
// (critical path and per-type resource load) for gap reporting.
func ScheduleBounds(g *Assay, alloc Allocation, opts Options) (bound.Bounds, error) {
	return bound.Compute(g, alloc, opts.Schedule.TC)
}

// Bounds re-exports the lower-bound record type.
type Bounds = bound.Bounds

// Protocol building blocks: composable constructors for the classic
// bioassay patterns (see internal/protocol).

// BuildMixingTree appends a balanced binary mixing tree with the given
// power-of-two leaf count and per-mix duration; it returns the root.
func BuildMixingTree(b *AssayBuilder, leaves int, mixDur Time) (OpID, error) {
	return protocol.MixingTree(b, leaves, protocol.MixSpec{Duration: mixDur})
}

// BuildSerialDilution appends a serial dilution chain of the given length
// after source (NoOp for a fresh source), optionally detecting each
// stage; it returns the stage operations.
func BuildSerialDilution(b *AssayBuilder, source OpID, stages int, mixDur Time, detectEach bool, detDur Time) ([]OpID, error) {
	return protocol.SerialDilution(b, source, stages, protocol.MixSpec{Duration: mixDur}, detectEach, detDur)
}

// BuildMultiplex appends a samples×reagents mix-and-detect panel and
// returns the detection operations.
func BuildMultiplex(b *AssayBuilder, samples, reagents int, mixDur, detDur Time) ([]OpID, error) {
	return protocol.Multiplex(b, samples, reagents, mixDur, detDur)
}

// BuildHeatCycle appends alternating heat/mix thermocycles after source
// and returns the final operation.
func BuildHeatCycle(b *AssayBuilder, source OpID, cycles int, heatDur, mixDur Time) (OpID, error) {
	return protocol.HeatCycle(b, source, cycles, heatDur, mixDur)
}

// NoOp is the invalid operation ID (e.g. "no source" for builders).
const NoOp = assay.NoOp

// WashPlan is an explicit channel-washing plan derived from a solution.
type WashPlan = washplan.Plan

// PlanWashes derives a buffer-flush plan for every routed task and audits
// whether each flush completes before its channel is reused by a
// different fluid.
func PlanWashes(sol *Solution) (*WashPlan, error) { return washplan.Build(sol) }

// TimingReport summarises the flow speeds the routed geometry implies
// under the scheduler's constant-t_c assumption.
type TimingReport = timing.Report

// AnalyzeTiming audits the t_c assumption of a solution: the implied
// per-task flow speeds and the smallest t_c that keeps every task under
// the speed cap (mm/s; 0 selects the default cap).
func AnalyzeTiming(sol *Solution, speedCap float64) (TimingReport, error) {
	return timing.Analyze(sol, speedCap)
}

// MergeAssays combines several independent bioassays into one sequencing
// graph (operation names prefixed by their assay), so concurrent
// applications can be synthesized onto a single chip.
func MergeAssays(name string, assays ...*Assay) (*Assay, error) {
	return assay.Merge(name, assays...)
}

// AllocationCandidate is one evaluated allocation from ExploreAllocations.
type AllocationCandidate = archsyn.Candidate

// ExploreAllocations schedules every covering allocation with at most
// maxPerType components per type and returns the area/makespan trade-off
// sorted by completion time — the architectural-synthesis step upstream
// of the paper's physical design.
func ExploreAllocations(g *Assay, opts Options, maxPerType int) ([]AllocationCandidate, error) {
	return archsyn.Explore(g, opts.Schedule, maxPerType)
}

// ParetoAllocations filters candidates to the area/makespan frontier.
func ParetoAllocations(cands []AllocationCandidate) []AllocationCandidate {
	return archsyn.Pareto(cands)
}

// RecommendAllocation returns the fastest allocation within an area
// budget in grid cells (0 = unbounded).
func RecommendAllocation(g *Assay, opts Options, maxPerType, maxArea int) (Allocation, error) {
	return archsyn.Recommend(g, opts.Schedule, maxPerType, maxArea)
}

// OptimalSchedule exhaustively searches all resource bindings of a small
// assay and returns the binding-optimal schedule's completion time along
// with the number of candidates examined. It errors on assays whose
// search space is too large.
func OptimalSchedule(g *Assay, alloc Allocation, opts Options) (Time, int, error) {
	res, st, err := exact.Optimal(g, alloc.Instantiate(), opts.Schedule)
	if err != nil {
		return 0, 0, err
	}
	return res.Makespan, st.Candidates, nil
}
