package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	// Build a small assay through the public API only.
	b := repro.NewAssay("facade")
	m1 := b.AddOp("m1", repro.Mix, repro.Seconds(3), repro.Fluid{Name: "a", D: 1e-6})
	m2 := b.AddOp("m2", repro.Mix, repro.Seconds(4), repro.Fluid{Name: "b", D: 1e-7})
	d := b.AddOp("d", repro.Detect, repro.Seconds(2), repro.Fluid{Name: "c", D: 1e-5})
	b.AddDep(m1, m2)
	b.AddDep(m2, d)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	alloc := repro.MinimalAllocation(g)
	if alloc != (repro.Allocation{1, 0, 0, 1}) {
		t.Fatalf("minimal allocation = %v", alloc)
	}

	opts := repro.DefaultOptions()
	opts.Place.Imax = 30
	sol, err := repro.Synthesize(g, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.Verify(sol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != sol.Metrics().ExecutionTime {
		t.Error("replay and metrics disagree on completion time")
	}
	if out := repro.Gantt(sol); !strings.Contains(out, "Mixer1") {
		t.Error("Gantt missing component")
	}
	if out := repro.Layout(sol); !strings.Contains(out, "M") {
		t.Error("Layout missing component")
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	bm, err := repro.BenchmarkByName("IVD")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.EncodeAssay(&buf, bm.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := repro.DecodeAssay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != bm.Graph.NumOps() {
		t.Error("round trip changed op count")
	}
}

func TestFacadeBenchmarksAndComparison(t *testing.T) {
	if got := len(repro.Benchmarks()); got != 7 {
		t.Fatalf("benchmarks = %d, want 7", got)
	}
	opts := repro.DefaultOptions()
	opts.Place.Imax = 25
	bm, _ := repro.BenchmarkByName("PCR")
	rows, err := repro.RunComparison([]repro.Benchmark{bm}, opts)
	if err != nil {
		t.Fatal(err)
	}
	table := repro.TableI(rows)
	if !strings.Contains(table, "PCR") {
		t.Error("TableI missing PCR")
	}
	if !strings.Contains(repro.Fig8(rows), "Fig. 8") {
		t.Error("Fig8 header missing")
	}
	if !strings.Contains(repro.Fig9(rows), "Fig. 9") {
		t.Error("Fig9 header missing")
	}
	csv := repro.ComparisonCSV(rows)
	if !strings.HasPrefix(csv, "benchmark,") {
		t.Error("CSV header missing")
	}
}

func TestFacadeParseAllocation(t *testing.T) {
	a, err := repro.ParseAllocation("(8,0,0,2)")
	if err != nil || a != (repro.Allocation{8, 0, 0, 2}) {
		t.Errorf("ParseAllocation = %v, %v", a, err)
	}
}

func TestFacadeSyntheticGenerator(t *testing.T) {
	g := repro.GenerateSyntheticAssay("t", 15, repro.Allocation{2, 1, 1, 1}, 5)
	if g.NumOps() != 15 {
		t.Errorf("ops = %d", g.NumOps())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeBaselineNeverBeatsOursOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark comparison in short mode")
	}
	opts := repro.DefaultOptions()
	opts.Place.Imax = 40
	for _, bm := range repro.Benchmarks() {
		ours, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		ba, err := repro.SynthesizeBaseline(bm.Graph, bm.Alloc, opts)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if ours.Metrics().ExecutionTime > ba.Metrics().ExecutionTime {
			t.Errorf("%s: ours %v slower than BA %v", bm.Name,
				ours.Metrics().ExecutionTime, ba.Metrics().ExecutionTime)
		}
	}
}

func TestFacadeProtocolBuilders(t *testing.T) {
	b := repro.NewAssay("protocol")
	root, err := repro.BuildMixingTree(b, 4, repro.Seconds(5))
	if err != nil {
		t.Fatal(err)
	}
	last, err := repro.BuildHeatCycle(b, root, 2, repro.Seconds(6), repro.Seconds(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.BuildSerialDilution(b, last, 3, repro.Seconds(5), true, repro.Seconds(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.BuildMultiplex(b, 2, 2, repro.Seconds(5), repro.Seconds(4)); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 7 (tree) + 4 (cycle) + 6 (dilution+detects) + 8 (multiplex) = 25.
	if g.NumOps() != 25 {
		t.Errorf("ops = %d, want 25", g.NumOps())
	}
	opts := repro.DefaultOptions()
	opts.Place.Imax = 25
	sol, err := repro.Synthesize(g, repro.Allocation{3, 1, 0, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Verify(sol); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAnalyses(t *testing.T) {
	bm, _ := repro.BenchmarkByName("CPA")
	opts := repro.DefaultOptions()
	opts.Place.Imax = 30
	sol, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl := repro.ControlLayer(sol)
	if cl.NumValves <= 0 || cl.Steps != sol.Metrics().Transports {
		t.Errorf("control layer %+v inconsistent", cl)
	}
	wp, err := repro.PlanWashes(sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp.Flushes) != sol.Metrics().Transports {
		t.Errorf("flushes %d != transports %d", len(wp.Flushes), sol.Metrics().Transports)
	}
}

func TestFacadeAllocationExploration(t *testing.T) {
	bm, _ := repro.BenchmarkByName("IVD")
	opts := repro.DefaultOptions()
	cands, err := repro.ExploreAllocations(bm.Graph, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 { // 1..2 mixers × 1..2 detectors
		t.Fatalf("candidates = %d, want 4", len(cands))
	}
	front := repro.ParetoAllocations(cands)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	rec, err := repro.RecommendAllocation(bm.Graph, opts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec != cands[0].Alloc {
		t.Errorf("recommendation %v != fastest %v", rec, cands[0].Alloc)
	}
}

func TestFacadeDedicatedStorage(t *testing.T) {
	bm, _ := repro.BenchmarkByName("Synthetic4")
	opts := repro.DefaultOptions()
	ded, err := repro.ScheduleDedicated(bm.Graph, bm.Alloc, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := repro.Synthesize(bm.Graph, bm.Alloc, func() repro.Options {
		o := opts
		o.Place.Imax = 25
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics().ExecutionTime > ded {
		t.Errorf("DCSA %v slower than dedicated %v", sol.Metrics().ExecutionTime, ded)
	}
	if _, err := repro.ScheduleDedicated(bm.Graph, bm.Alloc, opts, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestFacadeOptimalSchedule(t *testing.T) {
	b := repro.NewAssay("tiny")
	m1 := b.AddOp("m1", repro.Mix, repro.Seconds(3), repro.Fluid{D: 1e-6})
	m2 := b.AddOp("m2", repro.Mix, repro.Seconds(3), repro.Fluid{D: 1e-6})
	m3 := b.AddOp("m3", repro.Mix, repro.Seconds(3), repro.Fluid{D: 1e-6})
	b.AddDep(m1, m3)
	b.AddDep(m2, m3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, candidates, err := repro.OptimalSchedule(g, repro.Allocation{2, 0, 0, 0}, repro.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if candidates <= 0 || opt <= 0 {
		t.Errorf("optimal = %v over %d candidates", opt, candidates)
	}
	sol, err := repro.Synthesize(g, repro.Allocation{2, 0, 0, 0}, repro.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if opt > sol.Metrics().ExecutionTime {
		t.Error("optimal worse than greedy")
	}
}

func TestFacadeControlPinsAndFailures(t *testing.T) {
	bm, _ := repro.BenchmarkByName("CPA")
	opts := repro.DefaultOptions()
	opts.Place.Imax = 30
	sol, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	pp := repro.PlanControlPins(sol)
	if pp.Pins <= 0 || pp.Pins > pp.Valves {
		t.Errorf("pin plan %+v", pp)
	}
	fa, err := repro.AnalyzeFailures(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Baseline != sol.Metrics().ExecutionTime {
		t.Errorf("failure baseline %v != solution %v", fa.Baseline, sol.Metrics().ExecutionTime)
	}
	if cm := repro.CongestionMap(sol); !strings.Contains(cm, "congestion") {
		t.Error("congestion map malformed")
	}
}

func TestFacadeTimingAndMerge(t *testing.T) {
	bm, _ := repro.BenchmarkByName("IVD")
	opts := repro.DefaultOptions()
	opts.Place.Imax = 30
	sol, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := repro.AnalyzeTiming(sol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tasks != sol.Metrics().Transports {
		t.Errorf("timing tasks %d != transports %d", tr.Tasks, sol.Metrics().Transports)
	}
	pcr, _ := repro.BenchmarkByName("PCR")
	m, err := repro.MergeAssays("both", bm.Graph, pcr.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumOps() != bm.Graph.NumOps()+pcr.Graph.NumOps() {
		t.Error("merge lost operations")
	}
}

func TestFacadeWashRoutingAndBounds(t *testing.T) {
	bm, _ := repro.BenchmarkByName("IVD")
	opts := repro.DefaultOptions()
	opts.Place.Imax = 30
	sol, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := repro.RouteWashes(sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Flushes) != sol.Metrics().Transports {
		t.Errorf("flush routes %d != transports %d", len(wr.Flushes), sol.Metrics().Transports)
	}
	bd, err := repro.ScheduleBounds(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics().ExecutionTime < bd.Best {
		t.Errorf("makespan %v beats lower bound %v", sol.Metrics().ExecutionTime, bd.Best)
	}
	if bd.GapPct(sol.Metrics().ExecutionTime) < 0 {
		t.Error("negative gap")
	}
}
