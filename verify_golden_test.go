// Golden-solution verification: every solution the pipeline produces on
// the Table I benchmarks — the same 14 runs whose byte fingerprints are
// pinned in determinism_test.go — must pass the independent constraint
// auditor with zero violations. The fingerprints pin this implementation's
// exact output; the auditor pins the paper's constraints, so a legitimate
// algorithmic change that moves the fingerprints must still keep this test
// green.
package repro_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
)

func TestGoldenSolutionsVerify(t *testing.T) {
	for _, bm := range benchdata.All() {
		for _, algo := range []string{"ours", "BA"} {
			bm, algo := bm, algo
			t.Run(bm.Name+"/"+algo, func(t *testing.T) {
				t.Parallel()
				var sol *core.Solution
				var err error
				if algo == "ours" {
					sol, err = core.Synthesize(bm.Graph, bm.Alloc, fingerprintOpts())
				} else {
					sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, fingerprintOpts())
				}
				if err != nil {
					t.Fatal(err)
				}
				rep := core.Audit(sol)
				if !rep.OK() {
					t.Fatalf("independent audit found violations:\n%s", rep)
				}
				if rep.Stats.Ops == 0 || rep.Stats.Transports == 0 || rep.Stats.Routes == 0 {
					t.Fatalf("audit examined nothing: %+v", rep.Stats)
				}
			})
		}
	}
}
